#include "runtime/analyze.hpp"

#include <execinfo.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <sstream>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace stgraph::analyze {

namespace detail {
std::atomic<bool> g_armed{false};
}  // namespace detail

namespace {

constexpr int kMaxFrames = 24;
/// Frames of the hook machinery itself to drop from captured stacks (the
/// backtrace call, capture_stack, the on_* hook).
constexpr int kSkipFrames = 2;

// ---- per-thread state -----------------------------------------------------

struct HeldLock {
  const void* m = nullptr;
  uint32_t site = 0;
  bool blocking = false;  ///< acquired via a wedging (unbounded) acquire
  void* bt[kMaxFrames];
  int bt_depth = 0;
};

struct ThreadState {
  std::vector<HeldLock> held;
  int blocking_ok_depth = 0;
  bool in_hook = false;  ///< reentrancy guard (hazard hooks inside lock hooks)
};

ThreadState& tls() {
  static thread_local ThreadState t;
  return t;
}

uint64_t this_thread_id() {
  return std::hash<std::thread::id>{}(std::this_thread::get_id());
}

int capture_stack(void** frames) { return ::backtrace(frames, kMaxFrames); }

std::string symbolize(void* const* frames, int depth) {
  std::string out;
  char** syms = ::backtrace_symbols(frames, depth);
  if (!syms) return out;
  for (int i = kSkipFrames; i < depth; ++i) {
    out += "      ";
    out += syms[i];
    out += '\n';
  }
  std::free(syms);
  return out;
}

// ---- global state ---------------------------------------------------------

struct EdgeInfo {
  uint32_t from = 0;
  uint32_t to = 0;
  uint64_t thread_id = 0;
  std::string holder_stack;
  std::string acquirer_stack;
};

/// All analyzer bookkeeping, behind ONE raw std::mutex: hooks fire while
/// arbitrary application Mutexes are held, so the analyzer must never
/// acquire an instrumented lock (std::mutex is invisible to the hooks and
/// to -Wthread-safety, which is the point). Leaked on purpose — hooks can
/// run from thread/static destructors after normal teardown.
struct Registry {
  std::mutex mu;
  std::vector<std::string> site_names;
  std::unordered_map<std::string, uint32_t> site_by_label;
  std::unordered_map<const void*, uint32_t> site_by_instance;
  uint64_t next_anon = 0;
  /// Acquisition-order edges, keyed from<<32|to; values own the sample
  /// stacks shown when the edge participates in a cycle.
  std::unordered_map<uint64_t, EdgeInfo> edges;
  /// Adjacency for cycle detection (site -> successor sites).
  std::vector<std::vector<uint32_t>> adj;
  /// Cycles reported so far, deduped by sorted site set.
  std::vector<LockCycle> cycles;
  std::unordered_set<std::string> cycle_keys;
  std::vector<BlockingHazard> hazards;
  std::unordered_set<std::string> hazard_keys;
};

Registry& reg() {
  static Registry* r = new Registry;
  return *r;
}

/// Site id for (instance, label). Labeled mutexes share one site per label
/// (the analysis is per program location); unlabeled instances each get a
/// generated site so unrelated anonymous locks can never alias into a
/// false cycle.
uint32_t site_id_locked(Registry& r, const void* m, const char* label) {
  auto it = r.site_by_instance.find(m);
  if (it != r.site_by_instance.end()) return it->second;
  uint32_t id;
  if (label && *label) {
    auto [lit, inserted] =
        r.site_by_label.emplace(label, static_cast<uint32_t>(r.site_names.size()));
    if (inserted) {
      r.site_names.emplace_back(label);
      r.adj.emplace_back();
    }
    id = lit->second;
  } else {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "unlabeled-mutex#%llu",
                  static_cast<unsigned long long>(r.next_anon++));
    id = static_cast<uint32_t>(r.site_names.size());
    r.site_names.emplace_back(buf);
    r.adj.emplace_back();
  }
  r.site_by_instance.emplace(m, id);
  return id;
}

/// DFS: is `to` connected back to `from` through existing edges? Fills
/// `path` with the site sequence to -> ... -> from when it is.
bool find_path_locked(const Registry& r, uint32_t to, uint32_t from,
                      std::vector<uint32_t>* path) {
  std::vector<uint8_t> seen(r.adj.size(), 0);
  std::vector<uint32_t> stack{to};
  std::vector<int32_t> parent(r.adj.size(), -1);
  seen[to] = 1;
  while (!stack.empty()) {
    const uint32_t v = stack.back();
    stack.pop_back();
    if (v == from) {
      // Reconstruct to -> ... -> from.
      std::vector<uint32_t> rev;
      for (int32_t x = static_cast<int32_t>(from); x != -1; x = parent[x])
        rev.push_back(static_cast<uint32_t>(x));
      path->assign(rev.rbegin(), rev.rend());
      return true;
    }
    for (uint32_t w : r.adj[v]) {
      if (!seen[w]) {
        seen[w] = 1;
        parent[w] = static_cast<int32_t>(v);
        stack.push_back(w);
      }
    }
  }
  return false;
}

void record_cycle_locked(Registry& r, const std::vector<uint32_t>& sites) {
  // Dedup on the sorted site set: A->B->A and B->A->B are one finding.
  std::vector<uint32_t> sorted(sites);
  std::sort(sorted.begin(), sorted.end());
  std::string key;
  for (uint32_t s : sorted) {
    key += std::to_string(s);
    key += ',';
  }
  if (!r.cycle_keys.insert(key).second) return;
  LockCycle cyc;
  for (std::size_t i = 0; i < sites.size(); ++i) {
    const uint32_t a = sites[i];
    const uint32_t b = sites[(i + 1) % sites.size()];
    auto it = r.edges.find((static_cast<uint64_t>(a) << 32) | b);
    CycleEdge e;
    e.from_site = r.site_names[a];
    e.to_site = r.site_names[b];
    if (it != r.edges.end()) {
      e.thread_id = it->second.thread_id;
      e.holder_stack = it->second.holder_stack;
      e.acquirer_stack = it->second.acquirer_stack;
    }
    cyc.edges.push_back(std::move(e));
  }
  std::fprintf(stderr, "%s", cyc.to_string().c_str());
  r.cycles.push_back(std::move(cyc));
}

void record_hazard_locked(Registry& r, const char* what,
                          const std::vector<HeldLock>& held,
                          const void* exclude, void* const* bt, int depth) {
  std::vector<std::string> sites;
  {
    for (const HeldLock& h : held) {
      if (h.m == exclude) continue;
      sites.push_back(r.site_names[h.site]);
    }
  }
  if (sites.empty()) return;
  std::string key = what;
  key += '|';
  key += sites.back();  // innermost held lock names the site
  if (!r.hazard_keys.insert(key).second) return;
  BlockingHazard hz;
  hz.what = what;
  hz.held_sites = std::move(sites);
  hz.stack = symbolize(bt, depth);
  std::fprintf(stderr, "%s", hz.to_string().c_str());
  r.hazards.push_back(std::move(hz));
}

void exit_check() {
  Registry& r = reg();
  std::lock_guard<std::mutex> lk(r.mu);
  if (r.cycles.empty() && r.hazards.empty()) {
    std::fprintf(stderr,
                 "stgraph-analyze: clean (%zu lock sites, %zu order edges, "
                 "0 cycles, 0 blocking hazards)\n",
                 r.site_names.size(), r.edges.size());
    return;
  }
  std::fprintf(stderr,
               "stgraph-analyze: FAILING the process — %zu lock-order "
               "cycle(s), %zu blocking hazard(s)\n",
               r.cycles.size(), r.hazards.size());
  // The findings were already printed when recorded; _exit keeps the
  // failure from being masked by destructors that run after us.
  std::_Exit(1);
}

/// Environment arming: one readout at static-init time, plus the atexit
/// enforcement hook that makes armed runs self-checking.
struct EnvArm {
  EnvArm() {
    const char* e = std::getenv("STGRAPH_DEADLOCK");
    if (e && *e && std::strcmp(e, "0") != 0) {
      detail::g_armed.store(true, std::memory_order_relaxed);
      std::atexit(&exit_check);
    }
  }
};
EnvArm g_env_arm;

}  // namespace

// ---- hooks ----------------------------------------------------------------

void on_lock_attempt(const void* m, const char* site) {
  ThreadState& t = tls();
  if (t.in_hook) return;
  t.in_hook = true;
  if (!t.held.empty()) {
    void* bt[kMaxFrames];
    const int depth = capture_stack(bt);
    Registry& r = reg();
    std::lock_guard<std::mutex> lk(r.mu);
    const uint32_t to = site_id_locked(r, m, site);
    for (const HeldLock& h : t.held) {
      const uint32_t from = h.site;
      if (from == to) {
        if (h.m == m) {
          // Relocking the exact instance this thread already holds: a
          // guaranteed self-deadlock on a non-recursive mutex.
          record_cycle_locked(r, {to});
        }
        // Same site, different instance: two objects of one class cannot
        // be ordered statically; skip rather than fabricate a self-cycle.
        continue;
      }
      const uint64_t key = (static_cast<uint64_t>(from) << 32) | to;
      auto [it, inserted] = r.edges.emplace(key, EdgeInfo{});
      if (!inserted) continue;  // known order — steady state takes this path
      EdgeInfo& e = it->second;
      e.from = from;
      e.to = to;
      e.thread_id = this_thread_id();
      e.holder_stack = symbolize(h.bt, h.bt_depth);
      e.acquirer_stack = symbolize(bt, depth);
      r.adj[from].push_back(to);
      // New edge from->to: a cycle exists iff `from` was already reachable
      // from `to`.
      std::vector<uint32_t> path;
      if (find_path_locked(r, to, from, &path)) record_cycle_locked(r, path);
    }
  }
  t.in_hook = false;
}

void on_locked(const void* m, const char* site, bool blocking) {
  ThreadState& t = tls();
  if (t.in_hook) return;
  t.in_hook = true;
  HeldLock h;
  h.m = m;
  h.blocking = blocking;
  h.bt_depth = capture_stack(h.bt);
  {
    Registry& r = reg();
    std::lock_guard<std::mutex> lk(r.mu);
    h.site = site_id_locked(r, m, site);
  }
  t.held.push_back(h);
  t.in_hook = false;
}

void on_unlocked(const void* m) {
  ThreadState& t = tls();
  if (t.in_hook) return;
  // Innermost-first: lock scopes nest, so the match is almost always the
  // back. A miss (lock taken before arming) is silently fine.
  for (auto it = t.held.rbegin(); it != t.held.rend(); ++it) {
    if (it->m == m) {
      t.held.erase(std::next(it).base());
      return;
    }
  }
}

void on_mutex_destroyed(const void* m) {
  Registry& r = reg();
  std::lock_guard<std::mutex> lk(r.mu);
  r.site_by_instance.erase(m);
}

void on_cv_wait(const void* waited, const char* what) {
  ThreadState& t = tls();
  if (t.in_hook || t.blocking_ok_depth > 0) return;
  if (t.held.size() < 2) return;  // only the waited lock (or nothing) held
  t.in_hook = true;
  void* bt[kMaxFrames];
  const int depth = capture_stack(bt);
  Registry& r = reg();
  std::lock_guard<std::mutex> lk(r.mu);
  record_hazard_locked(r, what, t.held, waited, bt, depth);
  t.in_hook = false;
}

void on_blocking_call(const char* what) {
  ThreadState& t = tls();
  if (t.in_hook || t.blocking_ok_depth > 0 || t.held.empty()) return;
  t.in_hook = true;
  void* bt[kMaxFrames];
  const int depth = capture_stack(bt);
  Registry& r = reg();
  std::lock_guard<std::mutex> lk(r.mu);
  record_hazard_locked(r, what, t.held, /*exclude=*/nullptr, bt, depth);
  t.in_hook = false;
}

BlockingOkScope::BlockingOkScope(const char* /*reason*/) {
  ++tls().blocking_ok_depth;
}

BlockingOkScope::~BlockingOkScope() { --tls().blocking_ok_depth; }

// ---- reporting ------------------------------------------------------------

std::string LockCycle::to_string() const {
  std::ostringstream os;
  os << "stgraph-analyze: LOCK-ORDER CYCLE (potential deadlock), "
     << edges.size() << " edge(s):\n";
  for (const CycleEdge& e : edges) {
    os << "  " << e.from_site << " -> " << e.to_site << "  [thread "
       << e.thread_id << "]\n";
    if (!e.holder_stack.empty())
      os << "    held " << e.from_site << " acquired at:\n" << e.holder_stack;
    if (!e.acquirer_stack.empty())
      os << "    while acquiring " << e.to_site << " at:\n"
         << e.acquirer_stack;
  }
  return os.str();
}

std::string BlockingHazard::to_string() const {
  std::ostringstream os;
  os << "stgraph-analyze: BLOCKING HAZARD: " << what
     << " while holding [";
  for (std::size_t i = 0; i < held_sites.size(); ++i)
    os << (i ? ", " : "") << held_sites[i];
  os << "] outside any STG_BLOCKING_OK scope\n";
  if (!stack.empty()) os << "    blocked at:\n" << stack;
  return os.str();
}

uint64_t cycle_count() {
  Registry& r = reg();
  std::lock_guard<std::mutex> lk(r.mu);
  return r.cycles.size();
}

uint64_t hazard_count() {
  Registry& r = reg();
  std::lock_guard<std::mutex> lk(r.mu);
  return r.hazards.size();
}

std::vector<LockCycle> cycles() {
  Registry& r = reg();
  std::lock_guard<std::mutex> lk(r.mu);
  return r.cycles;
}

std::vector<BlockingHazard> hazards() {
  Registry& r = reg();
  std::lock_guard<std::mutex> lk(r.mu);
  return r.hazards;
}

std::string format_report() {
  Registry& r = reg();
  std::lock_guard<std::mutex> lk(r.mu);
  std::ostringstream os;
  os << "stgraph-analyze: " << r.site_names.size() << " lock sites, "
     << r.edges.size() << " order edges, " << r.cycles.size()
     << " cycle(s), " << r.hazards.size() << " blocking hazard(s)\n";
  for (const LockCycle& c : r.cycles) os << c.to_string();
  for (const BlockingHazard& h : r.hazards) os << h.to_string();
  return os.str();
}

verify::Report as_report() {
  Registry& r = reg();
  std::lock_guard<std::mutex> lk(r.mu);
  verify::Report rep;
  // One "check" per recorded order edge / blocking site inspection: the
  // count distinguishes a clean armed run from a run that never armed.
  for (std::size_t i = 0; i < r.edges.size(); ++i) rep.note_check();
  for (const LockCycle& c : r.cycles)
    rep.fail("analyze.lock-order", c.to_string());
  for (const BlockingHazard& h : r.hazards)
    rep.fail("analyze.blocking-hazard", h.to_string());
  return rep;
}

void arm(bool on) { detail::g_armed.store(on, std::memory_order_relaxed); }

void reset() {
  Registry& r = reg();
  std::lock_guard<std::mutex> lk(r.mu);
  // Keep the site tables: held-set entries on OTHER threads (a pool worker
  // parked in its cv wait, say) still carry site ids, and sites are stable
  // program locations anyway. Only the recorded orders and findings go.
  r.edges.clear();
  for (auto& succ : r.adj) succ.clear();
  r.cycles.clear();
  r.cycle_keys.clear();
  r.hazards.clear();
  r.hazard_keys.clear();
}

}  // namespace stgraph::analyze
