#include "serve/request_queue.hpp"

#include <algorithm>

namespace stgraph::serve {

TenantQueueSet::TenantQueueSet(std::vector<TenantLane> lanes,
                               std::size_t default_capacity) {
  if (lanes.empty()) lanes.push_back(TenantLane{});
  lanes_.reserve(lanes.size());
  for (TenantLane spec : lanes) {
    if (spec.capacity == 0) spec.capacity = default_capacity;
    if (spec.weight == 0) spec.weight = 1;
    lanes_.emplace_back(spec);
  }
}

std::size_t TenantQueueSet::lane_of(uint16_t tenant) const {
  // Linear scan: lane counts are small (a handful of tenants) and the
  // layout is immutable, so this is a cache-resident loop, not a map.
  for (std::size_t i = 0; i < lanes_.size(); ++i)
    if (lanes_[i].spec.id == tenant) return i;
  return 0;
}

TenantQueueSet::PushResult TenantQueueSet::push(PredictRequest&& req) {
  {
    MutexLock lk(mu_);
    if (closed_) return PushResult::kClosed;
    Lane& lane = lanes_[req.tenant_slot];
    if (lane.q.size() >= lane.spec.capacity) return PushResult::kFull;
    lane.q.push_back(std::move(req));
    ++total_;
    max_depth_ = std::max(max_depth_, total_);
  }
  cv_.notify_one();
  return PushResult::kOk;
}

std::vector<PredictRequest> TenantQueueSet::pop_batch(std::size_t max_batch) {
  MutexLock lk(mu_);
  while (!closed_ && total_ == 0) cv_.wait(lk);
  std::vector<PredictRequest> batch;
  if (total_ == 0) return batch;  // closed and drained
  batch.reserve(std::min(max_batch, total_));
  // Weighted round-robin: visit lanes cyclically from the rotating cursor,
  // taking up to `weight` requests per visit, until the batch is full or
  // everything is empty. The cursor advances to where the scan stopped so
  // successive batches (and concurrent readers) keep rotating the start
  // lane — no lane is systematically first.
  std::size_t lane = cursor_ % lanes_.size();
  std::size_t empty_streak = 0;
  while (batch.size() < max_batch && empty_streak < lanes_.size()) {
    Lane& l = lanes_[lane];
    std::size_t take = std::min<std::size_t>(l.spec.weight, l.q.size());
    take = std::min(take, max_batch - batch.size());
    if (take == 0) {
      ++empty_streak;
    } else {
      empty_streak = 0;
      for (std::size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(l.q.front()));
        l.q.pop_front();
      }
      total_ -= take;
    }
    lane = (lane + 1) % lanes_.size();
  }
  cursor_ = lane;
  // More work left and other readers may be parked: pass the baton.
  if (total_ > 0) cv_.notify_one();
  return batch;
}

std::vector<PredictRequest> TenantQueueSet::drain_all() {
  MutexLock lk(mu_);
  std::vector<PredictRequest> all;
  all.reserve(total_);
  for (Lane& l : lanes_) {
    while (!l.q.empty()) {
      all.push_back(std::move(l.q.front()));
      l.q.pop_front();
    }
  }
  total_ = 0;
  return all;
}

void TenantQueueSet::close() {
  {
    MutexLock lk(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

void TenantQueueSet::reopen() {
  MutexLock lk(mu_);
  closed_ = false;
}

std::size_t TenantQueueSet::depth() const {
  MutexLock lk(mu_);
  return total_;
}

std::size_t TenantQueueSet::max_depth() const {
  MutexLock lk(mu_);
  return max_depth_;
}

std::size_t TenantQueueSet::lane_depth(std::size_t lane) const {
  MutexLock lk(mu_);
  return lanes_[lane].q.size();
}

}  // namespace stgraph::serve
