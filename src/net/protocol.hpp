// Wire protocol of the network serving front-end (docs/serving.md "Wire
// protocol"): length-prefixed, CRC-framed binary messages over a byte
// stream, with a newline-delimited JSON fallback on the same port so the
// demo can be driven with netcat.
//
// Frame layout (all integers little-endian):
//
//   offset  size  field
//   0       4     magic "STGN"
//   4       4     payload_len           (payload bytes only, <= kMaxPayload)
//   8       1     verb
//   9       1     flags                 (reserved, must be 0)
//   10      2     tenant id
//   12      8     request id            (echoed verbatim in the response)
//   20      len   payload
//   20+len  4     crc32 over bytes [8, 20+len)  — verb through payload
//
// The CRC covers everything the length prefix frames (header tail +
// payload) via util/crc32 — the same checksum the WAL uses — so a torn or
// corrupted frame is rejected as a protocol error, never half-parsed.
//
// Verbs: request verbs are 1..4; a response echoes the request verb with
// the top bit set (0x81..0x84). kError (0x7F) answers any verb that could
// not be served, carrying a typed error code: codes 0..3 are exactly
// serve::ShedReason (the load-shedding taxonomy crosses the wire intact),
// 100 is a malformed/unparseable request, 101 an internal execution error.
//
// JSON fallback: a client that opens with '{' at a frame boundary speaks
// newline-delimited JSON instead: one {"op": "predict"|"stats"|"health",
// ...} object per line, one JSON object per line back. Only reads are
// exposed over JSON; ingest requires the binary frame.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "graph/stgraph_base.hpp"
#include "tensor/tensor.hpp"
#include "util/check.hpp"

namespace stgraph::net {

constexpr uint32_t kMagic = 0x4E475453u;  // "STGN" little-endian
constexpr std::size_t kHeaderSize = 20;
constexpr std::size_t kTrailerSize = 4;  // crc32
/// Upper bound on payload_len a peer may claim; anything larger is a
/// protocol error at header-parse time — the decoder never buffers it.
constexpr uint32_t kMaxPayload = 16u << 20;

enum class Verb : uint8_t {
  kPredict = 1,
  kIngest = 2,
  kStats = 3,
  kHealth = 4,
  // Responses: request verb | 0x80.
  kPredictResp = 0x81,
  kIngestResp = 0x82,
  kStatsResp = 0x83,
  kHealthResp = 0x84,
  kError = 0x7F,
};

/// Typed error code carried by a kError response. 0..3 mirror
/// serve::ShedReason numerically; keep them in sync.
enum class ErrorCode : uint8_t {
  kQueueFull = 0,
  kDeadlineExpired = 1,
  kDraining = 2,
  kCircuitOpen = 3,
  kBadRequest = 100,  ///< malformed frame/payload, unknown verb
  kInternal = 101,    ///< execution failed server-side
};

const char* to_string(ErrorCode code);

/// Client-side exception for a kError response (see Client).
class NetError : public StgError {
 public:
  NetError(ErrorCode code, const std::string& what)
      : StgError(what), code_(code) {}
  ErrorCode code() const { return code_; }

 private:
  ErrorCode code_;
};

/// One decoded (or to-be-encoded) frame.
struct Frame {
  Verb verb = Verb::kError;
  uint8_t flags = 0;
  uint16_t tenant = 0;
  uint64_t request_id = 0;
  std::vector<uint8_t> payload;
};

/// Serialize a frame: header + payload + crc32 trailer.
std::vector<uint8_t> encode_frame(const Frame& f);

/// Incremental decoder over a byte stream: feed() raw socket bytes, then
/// drain next() until kNeedMore. Tolerates arbitrarily torn input (frames
/// split at any byte boundary reassemble) and rejects garbage, oversized
/// or CRC-corrupt frames as kProtocolError with a diagnostic — after which
/// the connection must be dropped (the stream has lost framing).
class FrameDecoder {
 public:
  enum class Status : uint8_t {
    kNeedMore,       ///< no complete message buffered yet
    kFrame,          ///< *frame was filled with a valid binary frame
    kJsonLine,       ///< *json_line was filled with one JSON request line
    kProtocolError,  ///< stream is broken; see error(); close the peer
  };

  void feed(const void* data, std::size_t n);
  Status next(Frame* frame, std::string* json_line);
  const std::string& error() const { return error_; }
  std::size_t buffered() const { return buf_.size() - consumed_; }

 private:
  std::vector<uint8_t> buf_;
  std::size_t consumed_ = 0;  // compacted lazily
  std::string error_;
  bool broken_ = false;

  void compact();
};

// ---- payload builders / parsers -------------------------------------------
// Parsers throw NetError{kBadRequest} on truncated or inconsistent
// payloads; they never read past the payload buffer.

std::vector<uint8_t> build_predict_request(const std::vector<uint32_t>& nodes);
std::vector<uint32_t> parse_predict_request(const std::vector<uint8_t>& p);

struct PredictWire {
  uint32_t time = 0;
  uint64_t version = 0;
  bool stale = false;
  Tensor outputs;  ///< [rows, cols] f32
};
std::vector<uint8_t> build_predict_response(const PredictWire& r);
PredictWire parse_predict_response(const std::vector<uint8_t>& p);

std::vector<uint8_t> build_ingest_request(const EdgeDelta& delta,
                                          const Tensor& next_features);
void parse_ingest_request(const std::vector<uint8_t>& p, EdgeDelta* delta,
                          Tensor* next_features);

struct IngestWire {
  uint32_t time = 0;
  uint64_t version = 0;
  uint32_t num_edges = 0;
};
std::vector<uint8_t> build_ingest_response(const IngestWire& r);
IngestWire parse_ingest_response(const std::vector<uint8_t>& p);

std::vector<uint8_t> build_error(ErrorCode code, const std::string& message);
/// Returns the code; *message gets the diagnostic text.
ErrorCode parse_error(const std::vector<uint8_t>& p, std::string* message);

// ---- JSON fallback --------------------------------------------------------

/// Minimal request extracted from one JSON line. Not a general JSON
/// parser: it scans for the handful of keys the fallback supports and
/// rejects everything else as kBadRequest.
struct JsonRequest {
  std::string op;               ///< "predict" | "stats" | "health"
  std::vector<uint32_t> nodes;  ///< optional "nodes": [..]
  uint16_t tenant = 0;          ///< optional "tenant": n
};
JsonRequest parse_json_request(const std::string& line);

}  // namespace stgraph::net
