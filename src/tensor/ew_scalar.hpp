// Scalar elementwise formulas shared by the tape ops (tensor/ops.cpp) and
// the fusing compiler's interpreter (compiler/fusion.cpp). Both translation
// units are built with -ffp-contract=off, so evaluating one of these
// functions on the same float yields the same bits on both paths — the
// foundation of the fused/unfused parity contract.
#pragma once

#include <cmath>

namespace stgraph::ewmath {

/// Numerically stable logistic sigmoid (no exp overflow for large |v|).
inline float sigmoid(float v) {
  return v >= 0 ? 1.0f / (1.0f + std::exp(-v))
                : std::exp(v) / (1.0f + std::exp(v));
}

inline float relu(float v) { return v > 0 ? v : 0.0f; }

inline float leaky_relu(float v, float slope) {
  return v > 0 ? v : slope * v;
}

}  // namespace stgraph::ewmath
