// Assertion and error-handling macros used across STGraph.
//
// STG_CHECK is always on (it guards API contracts that user code can
// violate); STG_DCHECK compiles out in NDEBUG builds and guards internal
// invariants on hot paths.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace stgraph {

/// Exception thrown for violated API contracts (bad shapes, out-of-range
/// timestamps, misuse of the executor, ...).
class StgError : public std::runtime_error {
 public:
  explicit StgError(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] void throw_check_failure(const char* expr, const char* file,
                                      int line, const std::string& msg);

template <typename... Args>
std::string concat_message(const Args&... args) {
  std::ostringstream oss;
  (oss << ... << args);
  return oss.str();
}
}  // namespace detail

}  // namespace stgraph

#define STG_CHECK(cond, ...)                                              \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::stgraph::detail::throw_check_failure(                             \
          #cond, __FILE__, __LINE__,                                      \
          ::stgraph::detail::concat_message("" __VA_ARGS__));             \
    }                                                                     \
  } while (0)

#ifdef NDEBUG
#define STG_DCHECK(cond, ...) \
  do {                        \
  } while (0)
#else
#define STG_DCHECK(cond, ...) STG_CHECK(cond, __VA_ARGS__)
#endif
