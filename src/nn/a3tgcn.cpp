#include "nn/a3tgcn.hpp"

#include "tensor/ops.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace stgraph::nn {

A3TGCN::A3TGCN(int64_t in_features, int64_t out_features, int64_t periods,
               Rng& rng)
    : in_(in_features),
      out_(out_features),
      periods_(periods),
      tgcn_(in_features, out_features, rng) {
  STG_CHECK(periods_ >= 1, "A3TGCN needs at least one period");
  register_module("tgcn", &tgcn_);
  // Uniform initial attention (zeros → softmax uniform).
  att_score_ = register_parameter("att_score", Tensor::zeros({periods_}));
}

Tensor A3TGCN::initial_state(int64_t num_nodes) const {
  return Tensor::zeros({num_nodes, out_ * periods_});
}

Tensor A3TGCN::attention() const {
  NoGradGuard ng;
  return ops::softmax(att_score_);
}

std::pair<Tensor, Tensor> A3TGCN::forward(core::TemporalExecutor& exec,
                                          const Tensor& x,
                                          const Tensor& packed,
                                          const float* edge_weights) const {
  STG_CHECK(packed.defined() && packed.cols() == out_ * periods_,
            "packed A3TGCN state must be [N, hidden*periods]");
  using namespace ops;
  // Newest hidden state occupies columns [0, out_).
  Tensor h_prev = slice_cols(packed, 0, out_);
  Tensor h_new = tgcn_.forward(exec, x, h_prev, edge_weights);

  // Shift the window: drop the oldest block, prepend the new state.
  Tensor window = periods_ > 1
                      ? cat_cols(h_new, slice_cols(packed, 0,
                                                   out_ * (periods_ - 1)))
                      : h_new;

  // Attention-weighted combination over the window.
  Tensor alpha = softmax(att_score_);
  Tensor h_att;
  for (int64_t p = 0; p < periods_; ++p) {
    Tensor block = slice_cols(window, p * out_, (p + 1) * out_);
    Tensor weighted = scale(block, element(alpha, p));
    h_att = h_att.defined() ? add(h_att, weighted) : weighted;
  }
  return {h_att, window};
}

A3TGCNRegressor::A3TGCNRegressor(int64_t in_features, int64_t hidden,
                                 int64_t periods, Rng& rng)
    : a3_(in_features, hidden, periods, rng), head_(hidden, 1, rng) {
  register_module("a3tgcn", &a3_);
  register_module("head", &head_);
}

std::pair<Tensor, Tensor> A3TGCNRegressor::step(core::TemporalExecutor& exec,
                                                const Tensor& x,
                                                const Tensor& state,
                                                const float* edge_weights) {
  auto [h_att, window] = a3_.forward(exec, x, state, edge_weights);
  return {head_.forward(ops::relu(h_att)), window};
}

}  // namespace stgraph::nn
