#include "graph/shard.hpp"

#include <algorithm>
#include <cstdlib>

#include "graph/reorder.hpp"
#include "runtime/parallel.hpp"
#include "util/check.hpp"

namespace stgraph {

ShardPlan ShardPlan::clone() const {
  ShardPlan out;
  out.num_shards = num_shards;
  out.vertex_bounds = vertex_bounds;
  out.bounds = bounds.clone();
  out.in_order = in_order.clone();
  out.out_order = out_order.clone();
  return out;
}

uint32_t ShardPlan::shard_of(uint32_t v) const {
  STG_DCHECK(active(), "shard_of on an inactive plan");
  for (uint32_t s = 0; s + 1 < static_cast<uint32_t>(vertex_bounds.size()); ++s)
    if (v < vertex_bounds[s + 1]) return s;
  return num_shards - 1;
}

void ShardPlan::annotate(CsrView& view, bool forward) const {
  if (!active() || view.num_nodes != in_order.size()) return;
  view.shard_order = forward ? in_order.data() : out_order.data();
  view.shard_bounds = bounds.data();
  view.num_shards = num_shards;
}

uint32_t resolve_shard_count(uint32_t num_nodes) {
  if (num_nodes == 0) return 1;
  uint32_t requested = 0;
  if (const char* env = std::getenv("STGRAPH_SHARDS")) {
    char* end = nullptr;
    const unsigned long v = std::strtoul(env, &end, 10);
    if (end != env) requested = static_cast<uint32_t>(v);
  }
  if (requested == 0) {
    // Auto: two shards per lane gives the strided shard loop slack against
    // degree skew; shards below ~256 vertices cost more in launch + bounds
    // overhead than they win.
    const uint32_t lanes = ThreadPool::instance().lanes();
    const uint32_t cap = std::max(1u, num_nodes / 256);
    return std::clamp(2 * lanes, 1u, cap);
  }
  return std::min(requested, num_nodes);
}

ShardPlan build_shard_plan(uint32_t num_nodes, const uint32_t* in_deg,
                           const uint32_t* out_deg, const uint32_t* fwd_order,
                           const uint32_t* bwd_order, uint32_t num_shards) {
  ShardPlan plan;
  if (num_shards <= 1 || num_nodes == 0) return plan;
  STG_CHECK(num_shards <= num_nodes, "more shards than vertices");
  plan.num_shards = num_shards;

  std::vector<uint64_t> weights(num_nodes);
  for (uint32_t v = 0; v < num_nodes; ++v)
    weights[v] = static_cast<uint64_t>(in_deg[v]) + out_deg[v] + 2;
  plan.vertex_bounds = balanced_ranges(weights, num_shards);

  // Contiguous id ranges mean shard s holds exactly vertex_bounds[s+1] -
  // vertex_bounds[s] vertices, so the order-space bounds coincide with the
  // id-space bounds — one array serves both directions.
  plan.bounds = DeviceBuffer<uint32_t>(plan.vertex_bounds, MemCategory::kGraph);
  plan.in_order = DeviceBuffer<uint32_t>(num_nodes, MemCategory::kGraph);
  plan.out_order = DeviceBuffer<uint32_t>(num_nodes, MemCategory::kGraph);

  // Stable partition of each global degree order by shard: shard s keeps
  // its rows in global (descending-degree) relative order. Each shard's
  // slice is written by its own lane (O(n) scan per shard), so the writer
  // lane matches the kernel-time reader lane and the slice stays warm in
  // that lane's cache hierarchy; DeviceAllocator keeps large order arrays
  // on 2 MiB-aligned huge pages so a shard slice spans few pages.
  const auto& vb = plan.vertex_bounds;
  device::parallel_for(
      num_shards,
      [&](std::size_t s) {
        const uint32_t lo = vb[s];
        const uint32_t hi = vb[s + 1];
        uint32_t in_cur = vb[s];   // order-space == id-space bounds
        uint32_t out_cur = vb[s];
        for (uint32_t i = 0; i < num_nodes; ++i) {
          const uint32_t fv = fwd_order[i];
          if (fv >= lo && fv < hi) plan.in_order[in_cur++] = fv;
          const uint32_t bv = bwd_order[i];
          if (bv >= lo && bv < hi) plan.out_order[out_cur++] = bv;
        }
        STG_CHECK(in_cur == hi && out_cur == hi,
                  "shard order partition lost vertices");
      },
      /*grain=*/1);
  return plan;
}

uint64_t count_cut_edges(const CsrView& view, const ShardPlan& plan) {
  if (!plan.active()) return 0;
  // Dense shard-of map so the edge scan is O(E) not O(E·S).
  std::vector<uint32_t> shard_of(view.num_nodes);
  for (uint32_t s = 0; s < plan.num_shards; ++s)
    for (uint32_t v = plan.vertex_bounds[s]; v < plan.vertex_bounds[s + 1]; ++v)
      shard_of[v] = s;
  uint64_t cut = 0;
  for (uint32_t v = 0; v < view.num_nodes; ++v) {
    for (uint32_t i = view.row_offset[v]; i < view.row_offset[v + 1]; ++i) {
      const uint32_t u = view.col_indices[i];
      if (u == kSpace) continue;
      if (shard_of[u] != shard_of[v]) ++cut;
    }
  }
  return cut;
}

}  // namespace stgraph
