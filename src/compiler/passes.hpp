// Optimization passes over the vertex-program IR, mirroring Seastar's
// pipeline of IR rewrites before CUDA code generation:
//
//  * constant folding      — collapse products of kConst coefficients,
//  * mean lowering         — rewrite mean aggregation as sum with an
//                            InvDegree coefficient so there is one fused
//                            kernel shape,
//  * term deduplication    — merge additive terms with identical coefs and
//                            input (their constants add),
//  * dead term elimination — drop terms whose folded constant is zero.
#pragma once

#include "compiler/ir.hpp"

namespace stgraph::compiler {

/// Run the full pass pipeline; idempotent.
Program optimize(Program p);

// Individual passes (exposed for pass unit tests).
Program fold_constants(Program p);
Program lower_mean(Program p);
Program dedup_terms(Program p);
Program eliminate_dead_terms(Program p);

// ---- elementwise-program passes ------------------------------------------
// Both passes preserve topological (creation) order and only remove nodes,
// so the optimized program replays through ops:: in the same op order as
// the fused engine evaluates it — the property the bit-parity contract
// rests on.

/// Run the elementwise pipeline (CSE then DCE); idempotent.
EwProgram optimize_elementwise(EwProgram p);

/// Common-subexpression elimination: merge structurally identical nodes
/// (same op, operands, immediate) into the earliest occurrence.
EwProgram ew_eliminate_common(EwProgram p);

/// Dead-node elimination: drop nodes (including unused inputs' non-input
/// consumers) not reachable from any output. Input nodes are always kept
/// so the runtime input arity of the program never changes.
EwProgram ew_eliminate_dead(EwProgram p);

}  // namespace stgraph::compiler
