// Chaos harness for the serving runtime: randomized failpoint schedules +
// concurrent load + forced process kills, driven by a deterministic seed
// (STGRAPH_CHAOS_SEED, default 1 — `run_all.sh chaos` sweeps a fixed seed
// set). Invariants, regardless of schedule:
//   * no client ever hangs — every predict()/ingest() resolves (fulfilled,
//     stale, typed shed, or error),
//   * the stats account for every request exactly once:
//       issued == requests + stale_served + failed + shed_total,
//   * the server never publishes a torn read view: version/time move
//     forward only and the final view matches the committed ingests,
//   * after SIGKILL mid-stream, recover(checkpoint, wal) republishes a
//     read view bit-identical to a reference run of the same committed
//     prefix.
#include <gtest/gtest.h>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "datasets/synthetic.hpp"
#include "gpma/gpma_graph.hpp"
#include "io/train_state.hpp"
#include "net/client.hpp"
#include "net/frontend.hpp"
#include "nn/models.hpp"
#include "serve/server.hpp"
#include "serve/wal.hpp"
#include "util/failpoint.hpp"
#include "util/rng.hpp"
#include "verify/invariants.hpp"

namespace stgraph {
namespace {

constexpr int64_t kFeat = 5;
constexpr int64_t kHidden = 8;
constexpr uint32_t kNodes = 12;
const char* kWal = "/tmp/stgraph_test_chaos.stgw";
const char* kCkpt = "/tmp/stgraph_test_chaos.stgt";

uint64_t chaos_seed() {
  const char* env = std::getenv("STGRAPH_CHAOS_SEED");
  return env ? std::strtoull(env, nullptr, 10) : 1;
}

class ChaosTest : public ::testing::Test {
 protected:
  void TearDown() override {
    failpoint::disable_all();
    std::remove(kWal);
    std::remove(kCkpt);
  }
};

DtdgEvents chaos_base() {
  DtdgEvents ev;
  ev.num_nodes = kNodes;
  for (uint32_t i = 0; i < kNodes; ++i)
    ev.base_edges.emplace_back(i, (i + 1) % kNodes);
  return ev;
}

/// Deterministic per-seed delta stream: each step flips one ring chord on
/// or off so deltas stay valid against the live edge set by construction.
std::vector<EdgeDelta> chaos_deltas(uint64_t seed, uint32_t steps) {
  Rng rng(seed * 7919 + 17);
  std::vector<EdgeDelta> deltas(steps);
  std::vector<bool> chord_on(kNodes, false);  // chord i: (i, (i+3) % kNodes)
  for (uint32_t t = 0; t < steps; ++t) {
    const auto i = static_cast<uint32_t>(rng.next_below(kNodes));
    const std::pair<uint32_t, uint32_t> chord{i, (i + 3) % kNodes};
    if (chord_on[i])
      deltas[t].deletions.push_back(chord);
    else
      deltas[t].additions.push_back(chord);
    chord_on[i] = !chord_on[i];
  }
  return deltas;
}

Tensor features_at(uint32_t t) {
  Tensor x = Tensor::empty({kNodes, kFeat});
  for (int64_t i = 0; i < kNodes * kFeat; ++i)
    x.data()[i] = 0.1f * static_cast<float>(t + 1) +
                  0.01f * static_cast<float>(i % 13);
  return x;
}

void checkpoint_model(nn::TGCNEncoder& model) {
  io::TrainState st;
  st.params = model.parameters();
  for (const auto& p : st.params) {
    st.moment1.push_back(Tensor::zeros(p.tensor.shape()));
    st.moment2.push_back(Tensor::zeros(p.tensor.shape()));
  }
  io::save_train_state(st, kCkpt);
}

// ---- phase 1: randomized faults under concurrent load ----------------------

TEST_F(ChaosTest, RandomFaultScheduleNeverHangsAndAccountsEveryRequest) {
  const uint64_t seed = chaos_seed();
  SCOPED_TRACE("STGRAPH_CHAOS_SEED=" + std::to_string(seed));

  GpmaGraph graph(chaos_base());
  Rng rng(static_cast<uint64_t>(31));
  nn::TGCNEncoder model(kFeat, kHidden, rng);
  serve::ServeConfig cfg;
  cfg.max_batch = 4;
  cfg.queue_capacity = 64;
  cfg.circuit_failure_threshold = 3;
  cfg.circuit_cooldown_ms = 20;
  cfg.max_inflight_ingests = 2;
  cfg.wal_path = kWal;
  serve::Server server(graph, model, cfg);
  server.start(features_at(0));

  // The randomized failpoint schedule: every injectable fault in the serve
  // path fires probabilistically, reproducibly per seed.
  failpoint::set_seed(seed);
  failpoint::activate_from_spec(
      "serve.delta.apply=p:0.08; serve.batch.dispatch=p:0.06; "
      "serve.batch.delay=p:0.04; serve.step.poison=p:0.04; "
      "serve.wal.append=p:0.04");

  constexpr uint32_t kPredictThreads = 3;
  constexpr uint32_t kOpsPerThread = 40;
  constexpr uint32_t kIngestSteps = 30;
  std::atomic<uint64_t> fresh_ok{0}, stale_ok{0}, shed{0}, predict_err{0};
  std::atomic<uint64_t> ingest_ok{0}, ingest_shed{0}, ingest_err{0};

  auto predictor = [&](uint32_t tid) {
    Rng prng(seed ^ (0xACE0ull + tid));
    uint64_t last_version = 0;
    for (uint32_t k = 0; k < kOpsPerThread; ++k) {
      std::vector<uint32_t> nodes;
      if (k % 3 != 0)
        nodes.push_back(static_cast<uint32_t>(prng.next_below(kNodes)));
      // Mixed budgets: some generous, some tight enough to expire while a
      // delayed batch holds the lock, some with no deadline at all.
      const uint32_t mode = k % 4;
      try {
        serve::PredictResult res;
        if (mode == 0)
          res = server.predict(std::move(nodes));
        else if (mode == 1)
          res = server.predict(std::move(nodes),
                               std::chrono::milliseconds(10));
        else
          res = server.predict(std::move(nodes), std::chrono::seconds(5));
        // No torn reads: whatever we got is finite and version-ordered
        // (stale reads are version-tagged with an OLDER version — allowed
        // to step back only when flagged stale).
        for (int64_t i = 0; i < res.outputs.numel(); ++i)
          ASSERT_TRUE(std::isfinite(res.outputs.data()[i]));
        if (res.stale) {
          stale_ok.fetch_add(1);
        } else {
          EXPECT_GE(res.version, last_version);
          last_version = res.version;
          fresh_ok.fetch_add(1);
        }
      } catch (const serve::ShedError&) {
        shed.fetch_add(1);
      } catch (const StgError&) {
        predict_err.fetch_add(1);
      }
    }
  };

  std::vector<std::thread> threads;
  for (uint32_t i = 0; i < kPredictThreads; ++i)
    threads.emplace_back(predictor, i);

  // The ingest stream retries each step until it commits (faults on the
  // delta/wal/forward path throw without committing) so the timeline is a
  // deterministic function of the committed count, not the fault schedule.
  const std::vector<EdgeDelta> deltas = chaos_deltas(seed, kIngestSteps);
  for (uint32_t t = 0; t < kIngestSteps; ++t) {
    for (int attempt = 0; attempt < 64; ++attempt) {
      try {
        server.ingest(deltas[t], features_at(t + 1));
        ingest_ok.fetch_add(1);
        break;
      } catch (const serve::ShedError&) {
        ingest_shed.fetch_add(1);
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      } catch (const StgError&) {
        ingest_err.fetch_add(1);
      }
      ASSERT_LT(attempt, 63) << "ingest step " << t << " never committed";
    }
  }
  for (auto& th : threads) th.join();

  const serve::ReadView view = server.read_view();
  server.stop();
  failpoint::disable_all();

  // Committed timeline reached exactly the step count, regardless of how
  // many faults were injected along the way.
  EXPECT_EQ(view.time, kIngestSteps);
  EXPECT_EQ(ingest_ok.load(), kIngestSteps);

  // Full accounting: every call the server took resolved into exactly one
  // stats bucket — nothing double-counted, nothing dropped.
  const serve::StatsReport rep = server.stats();
  EXPECT_EQ(rep.requests, fresh_ok.load());
  EXPECT_EQ(rep.stale_served, stale_ok.load());
  EXPECT_EQ(rep.shed_total, shed.load() + ingest_shed.load());
  EXPECT_EQ(rep.failed, predict_err.load());
  const uint64_t predicts = kPredictThreads * kOpsPerThread;
  EXPECT_EQ(predicts + ingest_shed.load(),
            rep.requests + rep.stale_served + rep.failed + rep.shed_total);

  // The WAL survived the fault schedule: CRC-clean, monotonic, and exactly
  // one record per committed step (failed appends rolled back).
  const verify::Report wal_report = verify::check_wal(kWal);
  EXPECT_TRUE(wal_report.ok()) << wal_report.to_string();
  EXPECT_EQ(serve::wal::read(kWal).records.size(), 1u + kIngestSteps);
}

// ---- phase 1b: randomized socket faults ------------------------------------

TEST_F(ChaosTest, NetFaultScheduleNeverWedgesTheFrontend) {
  const uint64_t seed = chaos_seed();
  SCOPED_TRACE("STGRAPH_CHAOS_SEED=" + std::to_string(seed));
  constexpr uint32_t kClients = 3;
  constexpr uint32_t kOpsPerClient = 25;
  constexpr uint32_t kIngestSteps = 10;

  GpmaGraph graph(chaos_base());
  Rng rng(static_cast<uint64_t>(31));
  nn::TGCNEncoder model(kFeat, kHidden, rng);
  serve::ServeConfig cfg;
  cfg.max_batch = 4;
  cfg.queue_capacity = 64;
  serve::Server server(graph, model, cfg);
  server.start(features_at(0));
  net::Frontend frontend(server);
  frontend.start();
  const uint16_t port = frontend.port();

  // Socket-layer faults on top of a (mild) serve-layer schedule: dropped
  // accepts, single-byte reads, single-byte writes — reproducibly per seed.
  failpoint::set_seed(seed);
  failpoint::activate_from_spec(
      "net.accept=p:0.25; net.read.torn=p:0.2; net.write.short=p:0.2; "
      "serve.batch.delay=p:0.05");

  std::atomic<uint64_t> ok{0}, shed{0}, reconnects{0};
  auto worker = [&](uint32_t tid) {
    std::unique_ptr<net::Client> c;
    for (uint32_t k = 0; k < kOpsPerClient; ++k) {
      try {
        if (!c)
          c = std::make_unique<net::Client>("127.0.0.1", port, 10000.0);
        net::PredictWire w =
            c->predict({static_cast<uint32_t>((tid + k) % kNodes)});
        for (int64_t i = 0; i < w.outputs.numel(); ++i)
          ASSERT_TRUE(std::isfinite(w.outputs.data()[i]));
        ok.fetch_add(1);
      } catch (const net::NetError&) {
        shed.fetch_add(1);  // typed shed over the wire
      } catch (const StgError&) {
        // Dropped accept or mid-stream hangup: the op is lost, the client
        // reconnects — it must never hang.
        c.reset();
        reconnects.fetch_add(1);
      }
    }
  };
  std::vector<std::thread> threads;
  for (uint32_t i = 0; i < kClients; ++i) threads.emplace_back(worker, i);

  // The ingest stream also rides the faulty sockets; retry until each step
  // commits so the timeline is deterministic in the committed count.
  const std::vector<EdgeDelta> deltas = chaos_deltas(seed, kIngestSteps);
  uint32_t committed = 0;
  std::unique_ptr<net::Client> ingester;
  for (int attempt = 0; committed < kIngestSteps && attempt < 400; ++attempt) {
    try {
      if (!ingester)
        ingester = std::make_unique<net::Client>("127.0.0.1", port, 10000.0);
      const net::IngestWire w =
          ingester->ingest(deltas[committed], features_at(committed + 1));
      EXPECT_EQ(w.time, committed + 1);
      ++committed;
    } catch (const net::NetError&) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    } catch (const StgError&) {
      ingester.reset();
    }
  }
  EXPECT_EQ(committed, kIngestSteps) << "ingest stream wedged";
  for (auto& th : threads) th.join();

  failpoint::disable_all();
  frontend.stop();
  const serve::ReadView view = server.read_view();
  server.stop();
  EXPECT_EQ(view.time, kIngestSteps);
  EXPECT_GT(ok.load(), 0u);

  // Every predict the server accepted resolved into exactly one bucket —
  // connection chaos loses requests at the socket, never inside the server.
  const serve::StatsReport rep = server.stats();
  for (const auto& tr : rep.tenants)
    EXPECT_EQ(tr.issued,
              tr.requests + tr.stale_served + tr.failed + tr.shed_total)
        << "tenant " << tr.id;
}

// ---- phase 2: forced kill + recovery parity --------------------------------

/// Reference outputs after `steps` committed ingests of this seed's
/// deterministic stream (no faults, no WAL).
Tensor reference_output(uint64_t seed, uint32_t steps) {
  GpmaGraph graph(chaos_base());
  Rng rng(static_cast<uint64_t>(31));
  nn::TGCNEncoder model(kFeat, kHidden, rng);
  serve::Server server(graph, model);
  server.load(kCkpt);
  server.start(features_at(0));
  const std::vector<EdgeDelta> deltas = chaos_deltas(seed, steps);
  for (uint32_t t = 0; t < steps; ++t)
    server.ingest(deltas[t], features_at(t + 1));
  Tensor out = server.predict().outputs.clone();
  server.stop();
  return out;
}

TEST_F(ChaosTest, Kill9MidStreamRecoversBitIdenticalFromCheckpointPlusWal) {
  const uint64_t seed = chaos_seed();
  SCOPED_TRACE("STGRAPH_CHAOS_SEED=" + std::to_string(seed));
  constexpr uint32_t kSteps = 8;

  {
    GpmaGraph graph(chaos_base());
    Rng rng(static_cast<uint64_t>(31));
    nn::TGCNEncoder model(kFeat, kHidden, rng);
    checkpoint_model(model);
  }

  // Child: serve with the WAL armed, commit kSteps ingests, then die hard
  // — no stop(), no destructors, no final fsync beyond the per-record one.
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    GpmaGraph graph(chaos_base());
    Rng rng(static_cast<uint64_t>(31));
    nn::TGCNEncoder model(kFeat, kHidden, rng);
    serve::ServeConfig cfg;
    cfg.wal_path = kWal;
    serve::Server server(graph, model, cfg);
    server.load(kCkpt);
    server.start(features_at(0));
    const std::vector<EdgeDelta> deltas = chaos_deltas(seed, kSteps);
    for (uint32_t t = 0; t < kSteps; ++t)
      server.ingest(deltas[t], features_at(t + 1));
    ::kill(::getpid(), SIGKILL);  // simulated crash: no cleanup of any kind
    std::_Exit(86);               // unreachable
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL)
      << "child did not die by SIGKILL (status " << status << ")";

  // Parent: recover from what the dead process left on disk and compare
  // against an independent fault-free reference of the same prefix.
  const serve::wal::ReadResult rr = serve::wal::read(kWal);
  ASSERT_EQ(rr.records.size(), 1u + kSteps);  // every commit was durable
  const Tensor want = reference_output(seed, kSteps);

  GpmaGraph graph(chaos_base());
  Rng rng(static_cast<uint64_t>(99));  // junk init, overwritten by recover
  nn::TGCNEncoder model(kFeat, kHidden, rng);
  serve::Server server(graph, model);
  server.recover(kCkpt, kWal);
  EXPECT_EQ(server.read_view().time, kSteps);
  const Tensor got = server.predict().outputs;
  ASSERT_EQ(got.rows(), want.rows());
  ASSERT_EQ(got.cols(), want.cols());
  EXPECT_EQ(std::memcmp(got.data(), want.data(),
                        static_cast<std::size_t>(got.numel()) * sizeof(float)),
            0)
      << "recovered read view is not bit-identical to the reference";
  server.stop();
}

TEST_F(ChaosTest, Kill9UnderLiveConnectionsRecoversBitIdenticalFromWal) {
  const uint64_t seed = chaos_seed();
  SCOPED_TRACE("STGRAPH_CHAOS_SEED=" + std::to_string(seed));
  constexpr uint32_t kSteps = 6;

  {
    GpmaGraph graph(chaos_base());
    Rng rng(static_cast<uint64_t>(31));
    nn::TGCNEncoder model(kFeat, kHidden, rng);
    checkpoint_model(model);
  }

  int pipefd[2];
  ASSERT_EQ(::pipe(pipefd), 0);

  // Child: full network stack (server + frontend + WAL), reports its port,
  // then just serves until SIGKILLed with the parent's connection open.
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    ::close(pipefd[0]);
    GpmaGraph graph(chaos_base());
    Rng rng(static_cast<uint64_t>(31));
    nn::TGCNEncoder model(kFeat, kHidden, rng);
    serve::ServeConfig cfg;
    cfg.wal_path = kWal;
    serve::Server server(graph, model, cfg);
    server.load(kCkpt);
    server.start(features_at(0));
    net::Frontend frontend(server);
    frontend.start();
    const uint16_t port = frontend.port();
    if (::write(pipefd[1], &port, sizeof(port)) != sizeof(port))
      std::_Exit(87);
    ::close(pipefd[1]);
    for (;;) std::this_thread::sleep_for(std::chrono::seconds(1));
  }
  ::close(pipefd[1]);
  uint16_t port = 0;
  ASSERT_EQ(::read(pipefd[0], &port, sizeof(port)),
            static_cast<ssize_t>(sizeof(port)));
  ::close(pipefd[0]);

  // Parent drives the whole timeline over one live TCP connection, takes a
  // predict off the wire, and kills the child while that connection (and
  // any kernel-buffered state) is still open — no goodbye of any kind.
  const std::vector<EdgeDelta> deltas = chaos_deltas(seed, kSteps);
  Tensor live_out;
  {
    net::Client client("127.0.0.1", port, 10000.0);
    for (uint32_t t = 0; t < kSteps; ++t) {
      const net::IngestWire w =
          client.ingest(deltas[t], features_at(t + 1));
      ASSERT_EQ(w.time, t + 1);
    }
    const net::PredictWire live = client.predict();
    EXPECT_EQ(live.time, kSteps);
    live_out = live.outputs;
    ::kill(pid, SIGKILL);
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL)
      << "child did not die by SIGKILL (status " << status << ")";

  // Every ingest the wire acknowledged is durable (fsync-per-record), and
  // the recovered view is bit-identical both to a fault-free reference and
  // to what the dead server actually served over the network.
  ASSERT_EQ(serve::wal::read(kWal).records.size(), 1u + kSteps);
  const Tensor want = reference_output(seed, kSteps);

  GpmaGraph graph(chaos_base());
  Rng rng(static_cast<uint64_t>(99));  // junk init, overwritten by recover
  nn::TGCNEncoder model(kFeat, kHidden, rng);
  serve::Server server(graph, model);
  server.recover(kCkpt, kWal);
  EXPECT_EQ(server.read_view().time, kSteps);
  const Tensor got = server.predict().outputs;
  ASSERT_EQ(got.rows(), want.rows());
  ASSERT_EQ(got.cols(), want.cols());
  EXPECT_EQ(std::memcmp(got.data(), want.data(),
                        static_cast<std::size_t>(got.numel()) * sizeof(float)),
            0)
      << "recovered read view is not bit-identical to the reference";
  EXPECT_EQ(std::memcmp(live_out.data(), want.data(),
                        static_cast<std::size_t>(want.numel()) * sizeof(float)),
            0)
      << "network-served output diverged from the reference";
  server.stop();
}

}  // namespace
}  // namespace stgraph
