// Packed Memory Array — the storage engine behind GPMAGraph (paper §V-D,
// after Sha et al., "Accelerating Dynamic Graph Analytics on GPUs",
// VLDB'17).
//
// Keys are 64-bit edge keys (src << 32 | dst) kept sorted in an array with
// deliberate gaps ("SPACE" slots). The array is divided into leaf segments
// of Θ(log capacity) slots; a segment tree of density thresholds governs
// when a batch of insertions/deletions triggers a window rebalance
// (redistribute the window's live keys evenly) or a capacity change.
// Batches are routed to leaves with a prefix-max fence array, mirroring the
// GPU algorithm's per-leaf partitioning step.
//
// The PMA stores only keys; GPMAGraph layers edge labels, degree arrays and
// CSR views on top (they are rebuilt by a single O(capacity) pass after
// each batch, which is also where the paper's edge relabelling happens).
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "runtime/device_buffer.hpp"

namespace stgraph {

class Pma {
 public:
  static constexpr uint64_t kEmptyKey = ~0ULL;

  Pma();
  Pma(Pma&&) = default;
  Pma& operator=(Pma&&) = default;
  Pma(const Pma&) = delete;
  Pma& operator=(const Pma&) = delete;
  /// Deep copy, including slack structure (used by the Algorithm-2 cache).
  Pma clone() const;

  /// Number of live keys.
  std::size_t size() const { return size_; }
  std::size_t capacity() const { return slots_.size(); }
  std::size_t segment_size() const { return seg_size_; }
  /// Device bytes held by the slot array.
  std::size_t device_bytes() const { return slots_.bytes(); }

  /// Insert a batch of keys (unsorted ok; duplicates of existing keys are
  /// ignored). Returns the number of keys actually inserted.
  std::size_t insert_batch(std::vector<uint64_t> keys);

  /// Delete a batch of keys (absent keys ignored). Returns the number of
  /// keys actually removed.
  std::size_t erase_batch(std::vector<uint64_t> keys);

  bool contains(uint64_t key) const;

  /// Index of the first slot whose live key is >= `key`; capacity() if all
  /// live keys are smaller. Suitable for building row offsets over the
  /// gapped array.
  std::size_t lower_bound_slot(uint64_t key) const;

  /// Raw gapped slot array (kEmptyKey marks SPACE).
  const DeviceBuffer<uint64_t>& slots() const { return slots_; }

  // ---- delta bookkeeping (incremental view maintenance) -----------------
  // Every slot mutation since the last clear_dirty() is recorded in a
  // per-leaf dirty bitmap (blanked slots, redistributed windows), unless
  // dirty_global() is set (capacity change / global redistribute).
  // GPMAGraph merges runs of dirty leaves into windows and patches its
  // snapshot views in place instead of re-scanning the whole array. The
  // coarse [dirty_begin, dirty_end) envelope is kept for cheap emptiness
  // checks; the bitmap is what bounds the patch cost for deltas whose keys
  // scatter across the array.
  std::size_t dirty_begin() const { return dirty_lo_; }
  std::size_t dirty_end() const { return dirty_hi_; }
  bool dirty() const { return dirty_global_ || dirty_lo_ < dirty_hi_; }
  bool dirty_global() const { return dirty_global_; }
  /// One byte per leaf, nonzero iff any slot of that leaf changed.
  const std::vector<uint8_t>& dirty_leaves() const { return leaf_dirty_; }
  /// Per-leaf live-key counts (rank prefix source for incremental relabel).
  const std::vector<uint32_t>& leaf_counts() const { return leaf_count_; }
  void clear_dirty() {
    dirty_lo_ = capacity();
    dirty_hi_ = 0;
    dirty_global_ = false;
    std::fill(leaf_dirty_.begin(), leaf_dirty_.end(), uint8_t{0});
  }

  /// Number of live keys in slots [0, slot). O(leaves) via the per-leaf
  /// counts (plus a partial-leaf scan when `slot` is not leaf-aligned) —
  /// the rank an incremental relabel pass seeds its edge-id counter with.
  std::size_t live_keys_before(std::size_t slot) const;

  /// Index of the first live slot >= `slot`; capacity() if none. Skips
  /// empty leaves via the counts instead of scanning slot by slot.
  std::size_t first_live_slot_at_or_after(std::size_t slot) const;

  /// Live keys in sorted order (O(capacity); tests and global rebuilds).
  std::vector<uint64_t> extract_sorted() const;

  /// Validate all structural invariants; on failure returns false and
  /// explains in `why`. Checked invariants: live keys sorted and unique
  /// across the array, size() matches the live count, per-window densities
  /// within bounds (after the slack applied at construction).
  bool check_invariants(std::string* why = nullptr) const;

  /// Statistics for benches.
  uint64_t rebalance_count() const { return rebalances_; }
  uint64_t resize_count() const { return resizes_; }

 private:
  std::size_t num_leaves() const { return capacity() / seg_size_; }
  std::size_t tree_height() const;
  double upper_density(std::size_t height) const;
  double lower_density(std::size_t height) const;

  /// Leaf index a key routes to (via the prefix-max fences).
  std::size_t route_leaf(uint64_t key) const;

  /// Redistribute `keys` evenly across slots [begin, end).
  void redistribute(const std::vector<uint64_t>& keys, std::size_t begin,
                    std::size_t end);

  /// Collect live keys in slots [begin, end), sorted.
  std::vector<uint64_t> collect(std::size_t begin, std::size_t end) const;

  /// Rebuild fences + per-leaf live counts (full pass).
  void rebuild_metadata();
  /// Incremental metadata refresh for a window of leaves, with rightward
  /// fence propagation. Fences may be left stale-high after deletions,
  /// which is safe: routing then lands at or before the true leaf and the
  /// forward scan recovers.
  void refresh_metadata(std::size_t first_leaf, std::size_t leaf_span);

  /// Grow/shrink to `new_capacity` and redistribute `keys` globally.
  void rebuild_with_capacity(std::vector<uint64_t> keys,
                             std::size_t new_capacity);

  static std::size_t segment_size_for(std::size_t capacity);

  void mark_dirty(std::size_t begin, std::size_t end) {
    dirty_lo_ = std::min(dirty_lo_, begin);
    dirty_hi_ = std::max(dirty_hi_, end);
    if (leaf_dirty_.empty()) return;
    const std::size_t first = begin / seg_size_;
    const std::size_t last = std::min((end + seg_size_ - 1) / seg_size_,
                                      leaf_dirty_.size());
    for (std::size_t l = first; l < last; ++l) leaf_dirty_[l] = 1;
  }

  DeviceBuffer<uint64_t> slots_;
  std::size_t size_ = 0;
  std::size_t seg_size_ = 8;
  std::vector<uint32_t> leaf_count_;   // live keys per leaf
  std::vector<uint64_t> leaf_fence_;   // prefix max of live keys per leaf
  uint64_t rebalances_ = 0;
  uint64_t resizes_ = 0;
  // Dirty slot range since clear_dirty(); empty when lo >= hi.
  std::size_t dirty_lo_ = 0;
  std::size_t dirty_hi_ = 0;
  std::vector<uint8_t> leaf_dirty_;  // per-leaf dirty flags
  bool dirty_global_ = true;  // fresh arrays count as globally dirty
};

/// Pack/unpack edge keys.
inline uint64_t make_edge_key(uint32_t src, uint32_t dst) {
  return (static_cast<uint64_t>(src) << 32) | dst;
}
inline uint32_t edge_key_src(uint64_t key) {
  return static_cast<uint32_t>(key >> 32);
}
inline uint32_t edge_key_dst(uint64_t key) {
  return static_cast<uint32_t>(key & 0xFFFFFFFFu);
}

}  // namespace stgraph
