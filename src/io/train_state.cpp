#include "io/train_state.hpp"

#include <algorithm>

#include "io/binary_format.hpp"
#include "util/check.hpp"

namespace stgraph::io {
namespace {

constexpr uint32_t kMagicTrainState = 0x53544754;  // "STGT"
constexpr uint32_t kVersion = 1;

}  // namespace

void restore_parameters(std::vector<nn::Parameter>& live,
                        const std::vector<nn::Parameter>& saved,
                        const std::string& context) {
  STG_CHECK(live.size() == saved.size(), "", context, " has ", saved.size(),
            " parameters, model has ", live.size());
  for (std::size_t i = 0; i < live.size(); ++i) {
    STG_CHECK(live[i].name == saved[i].name, "", context, " parameter ", i,
              " is '", saved[i].name, "', model has '", live[i].name, "'");
    STG_CHECK(live[i].tensor.shape() == saved[i].tensor.shape(),
              "parameter '", live[i].name, "' shape mismatch in ", context);
    const Tensor& src = saved[i].tensor;
    std::copy(src.data(), src.data() + src.numel(), live[i].tensor.data());
  }
}

void save_train_state(const TrainState& state, const std::string& path) {
  STG_CHECK(state.moment1.size() == state.params.size() &&
                state.moment2.size() == state.params.size(),
            "train state has ", state.params.size(), " parameters but ",
            state.moment1.size(), "/", state.moment2.size(),
            " Adam moment tensors");
  Writer w(path, /*crc_footer=*/true);
  w.scalar(kMagicTrainState);
  w.scalar(kVersion);
  w.scalar<uint64_t>(state.config_hash);
  w.scalar<uint32_t>(state.epoch);
  w.scalar<uint32_t>(state.next_sequence);
  w.scalar<float>(state.lr);
  w.scalar<int64_t>(state.optimizer_step_count);
  w.scalar<uint32_t>(state.consecutive_failures);
  w.scalar<uint64_t>(state.non_finite_losses);
  w.scalar<uint64_t>(state.non_finite_grads);
  w.scalar<uint64_t>(state.skipped_steps);
  w.scalar<uint64_t>(state.lr_halvings);
  w.scalar<double>(state.epoch_loss_total);
  w.scalar<uint64_t>(state.epoch_steps);
  for (uint64_t word : state.rng.s) w.scalar<uint64_t>(word);
  w.scalar<uint8_t>(state.rng.has_cached_normal ? 1 : 0);
  w.scalar<float>(state.rng.cached_normal);
  w.scalar<uint32_t>(static_cast<uint32_t>(state.params.size()));
  for (std::size_t i = 0; i < state.params.size(); ++i) {
    w.str(state.params[i].name);
    write_tensor(w, state.params[i].tensor);
    write_tensor(w, state.moment1[i]);
    write_tensor(w, state.moment2[i]);
  }
  w.scalar<uint8_t>(state.hidden.defined() ? 1 : 0);
  if (state.hidden.defined()) write_tensor(w, state.hidden);
  w.finish();
}

TrainState load_train_state(const std::string& path) {
  Reader r(path, /*crc_footer=*/true);
  r.expect_magic(kMagicTrainState, kVersion);
  TrainState state;
  state.config_hash = r.scalar<uint64_t>();
  state.epoch = r.scalar<uint32_t>();
  state.next_sequence = r.scalar<uint32_t>();
  state.lr = r.scalar<float>();
  state.optimizer_step_count = r.scalar<int64_t>();
  state.consecutive_failures = r.scalar<uint32_t>();
  state.non_finite_losses = r.scalar<uint64_t>();
  state.non_finite_grads = r.scalar<uint64_t>();
  state.skipped_steps = r.scalar<uint64_t>();
  state.lr_halvings = r.scalar<uint64_t>();
  state.epoch_loss_total = r.scalar<double>();
  state.epoch_steps = r.scalar<uint64_t>();
  for (uint64_t& word : state.rng.s) word = r.scalar<uint64_t>();
  state.rng.has_cached_normal = r.scalar<uint8_t>() != 0;
  state.rng.cached_normal = r.scalar<float>();
  const uint32_t count = r.scalar<uint32_t>();
  state.params.reserve(count);
  state.moment1.reserve(count);
  state.moment2.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    nn::Parameter p;
    p.name = r.str(4096);
    p.tensor = read_tensor(r);
    Tensor m = read_tensor(r);
    Tensor v = read_tensor(r);
    STG_CHECK(m.shape() == p.tensor.shape() && v.shape() == p.tensor.shape(),
              "Adam moment shape mismatch for '", p.name, "' in '", path,
              "'");
    state.params.push_back(std::move(p));
    state.moment1.push_back(std::move(m));
    state.moment2.push_back(std::move(v));
  }
  if (r.scalar<uint8_t>() != 0) state.hidden = read_tensor(r);
  return state;
}

}  // namespace stgraph::io
