#include "graph/static_graph.hpp"

#include "util/check.hpp"

namespace stgraph {

StaticTemporalGraph::StaticTemporalGraph(
    uint32_t num_nodes,
    const std::vector<std::pair<uint32_t, uint32_t>>& edges,
    uint32_t num_timestamps)
    : num_timestamps_(num_timestamps) {
  STG_CHECK(num_timestamps > 0, "graph must cover at least one timestamp");
  std::vector<CooEdge> coo;
  coo.reserve(edges.size());
  uint32_t eid = 0;
  for (const auto& [s, d] : edges) coo.push_back({s, d, eid++});
  snapshot_ = build_snapshot(num_nodes, coo);
}

SnapshotView StaticTemporalGraph::make_view() const {
  SnapshotView v;
  v.in_view = view_of(snapshot_.in_csr);
  v.out_view = view_of(snapshot_.out_csr);
  v.in_degrees = snapshot_.in_degrees.data();
  v.out_degrees = snapshot_.out_degrees.data();
  v.gcn_coef = snapshot_.gcn_coef.empty() ? nullptr : snapshot_.gcn_coef.data();
  v.num_nodes = snapshot_.num_nodes;
  v.num_edges = snapshot_.num_edges;
  return v;
}

SnapshotView StaticTemporalGraph::get_graph(uint32_t t) {
  STG_CHECK(t < num_timestamps_, "timestamp ", t, " out of range ",
            num_timestamps_);
  return make_view();
}

SnapshotView StaticTemporalGraph::get_backward_graph(uint32_t t) {
  STG_CHECK(t < num_timestamps_, "timestamp ", t, " out of range ",
            num_timestamps_);
  return make_view();
}

}  // namespace stgraph
