#include "io/serialize.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <unordered_map>

#include "util/check.hpp"

namespace stgraph::io {
namespace {

constexpr uint32_t kMagicStatic = 0x53544753;  // "STGS"
constexpr uint32_t kMagicDtdg = 0x53544744;    // "STGD"
constexpr uint32_t kMagicCkpt = 0x53544743;    // "STGC"
constexpr uint32_t kVersion = 1;

// Little-endian scalar writers/readers. The formats are defined as
// little-endian; on a big-endian host these would need byte swaps, which
// we guard against rather than silently corrupting.
static_assert(std::endian::native == std::endian::little,
              "serializers assume a little-endian host");

class Writer {
 public:
  explicit Writer(const std::string& path) : out_(path, std::ios::binary) {
    STG_CHECK(out_.good(), "cannot open '", path, "' for writing");
    path_ = path;
  }
  template <typename T>
  void scalar(T v) {
    static_assert(std::is_trivially_copyable_v<T>);
    out_.write(reinterpret_cast<const char*>(&v), sizeof(T));
  }
  void bytes(const void* data, std::size_t n) {
    out_.write(static_cast<const char*>(data), static_cast<std::streamsize>(n));
  }
  void str(const std::string& s) {
    scalar<uint32_t>(static_cast<uint32_t>(s.size()));
    bytes(s.data(), s.size());
  }
  void finish() {
    out_.flush();
    STG_CHECK(out_.good(), "write to '", path_, "' failed");
  }

 private:
  std::ofstream out_;
  std::string path_;
};

class Reader {
 public:
  explicit Reader(const std::string& path) : in_(path, std::ios::binary) {
    STG_CHECK(in_.good(), "cannot open '", path, "' for reading");
    path_ = path;
  }
  template <typename T>
  T scalar() {
    static_assert(std::is_trivially_copyable_v<T>);
    T v{};
    in_.read(reinterpret_cast<char*>(&v), sizeof(T));
    STG_CHECK(in_.good(), "unexpected end of file in '", path_, "'");
    return v;
  }
  void bytes(void* data, std::size_t n) {
    in_.read(static_cast<char*>(data), static_cast<std::streamsize>(n));
    STG_CHECK(in_.good(), "unexpected end of file in '", path_, "'");
  }
  std::string str(uint32_t max_len = 1u << 20) {
    const uint32_t n = scalar<uint32_t>();
    STG_CHECK(n <= max_len, "string length ", n, " too large in '", path_, "'");
    std::string s(n, '\0');
    if (n) bytes(s.data(), n);
    return s;
  }
  void expect_magic(uint32_t magic) {
    const uint32_t got = scalar<uint32_t>();
    STG_CHECK(got == magic, "'", path_, "' has wrong magic (got 0x", std::hex,
              got, ", want 0x", magic, ")");
    const uint32_t version = scalar<uint32_t>();
    STG_CHECK(version == kVersion, "'", path_, "' has unsupported version ",
              version);
  }
  const std::string& path() const { return path_; }

 private:
  std::ifstream in_;
  std::string path_;
};

void write_edges(Writer& w, const EdgeList& edges) {
  w.scalar<uint64_t>(edges.size());
  for (const auto& [s, d] : edges) {
    w.scalar<uint32_t>(s);
    w.scalar<uint32_t>(d);
  }
}

EdgeList read_edges(Reader& r, uint32_t num_nodes) {
  const uint64_t m = r.scalar<uint64_t>();
  STG_CHECK(m <= (1ull << 32), "edge count ", m, " implausible in '",
            r.path(), "'");
  EdgeList edges;
  edges.reserve(m);
  for (uint64_t e = 0; e < m; ++e) {
    const uint32_t s = r.scalar<uint32_t>();
    const uint32_t d = r.scalar<uint32_t>();
    STG_CHECK(s < num_nodes && d < num_nodes, "edge (", s, ",", d,
              ") out of range in '", r.path(), "'");
    edges.emplace_back(s, d);
  }
  return edges;
}

void write_tensor(Writer& w, const Tensor& t) {
  w.scalar<uint32_t>(static_cast<uint32_t>(t.dim()));
  for (int64_t d = 0; d < t.dim(); ++d) w.scalar<int64_t>(t.size(d));
  w.bytes(t.data(), static_cast<std::size_t>(t.numel()) * sizeof(float));
}

Tensor read_tensor(Reader& r) {
  const uint32_t rank = r.scalar<uint32_t>();
  STG_CHECK(rank <= 2, "tensor rank ", rank, " unsupported in '", r.path(), "'");
  Shape shape;
  for (uint32_t d = 0; d < rank; ++d) {
    const int64_t dim = r.scalar<int64_t>();
    STG_CHECK(dim >= 0 && dim <= (1 << 30), "tensor dim ", dim,
              " implausible in '", r.path(), "'");
    shape.push_back(dim);
  }
  Tensor t = Tensor::empty(shape);
  if (t.numel())
    r.bytes(t.data(), static_cast<std::size_t>(t.numel()) * sizeof(float));
  return t;
}

}  // namespace

void save_static_dataset(const datasets::StaticTemporalDataset& ds,
                         const std::string& path) {
  Writer w(path);
  w.scalar(kMagicStatic);
  w.scalar(kVersion);
  w.str(ds.name);
  w.scalar<uint32_t>(ds.num_nodes);
  w.scalar<uint32_t>(ds.num_timestamps);
  write_edges(w, ds.edges);
  const auto& sig = ds.signal;
  w.scalar<uint32_t>(sig.num_timestamps());
  for (uint32_t t = 0; t < sig.num_timestamps(); ++t) {
    write_tensor(w, sig.features[t]);
    write_tensor(w, sig.targets[t]);
  }
  w.scalar<uint64_t>(sig.edge_weights.size());
  if (!sig.edge_weights.empty())
    w.bytes(sig.edge_weights.data(), sig.edge_weights.size() * sizeof(float));
  w.finish();
}

datasets::StaticTemporalDataset load_static_dataset(const std::string& path) {
  Reader r(path);
  r.expect_magic(kMagicStatic);
  datasets::StaticTemporalDataset ds;
  ds.name = r.str(4096);
  ds.num_nodes = r.scalar<uint32_t>();
  ds.num_timestamps = r.scalar<uint32_t>();
  ds.edges = read_edges(r, ds.num_nodes);
  const uint32_t t_count = r.scalar<uint32_t>();
  for (uint32_t t = 0; t < t_count; ++t) {
    Tensor feat = read_tensor(r);
    Tensor target = read_tensor(r);
    STG_CHECK(feat.rows() == ds.num_nodes && target.rows() == ds.num_nodes,
              "signal row count mismatch at t=", t, " in '", path, "'");
    ds.signal.features.push_back(std::move(feat));
    ds.signal.targets.push_back(std::move(target));
  }
  const uint64_t wn = r.scalar<uint64_t>();
  STG_CHECK(wn == 0 || wn == ds.edges.size(),
            "edge-weight count ", wn, " != edge count ", ds.edges.size(),
            " in '", path, "'");
  ds.signal.edge_weights.resize(wn);
  if (wn) r.bytes(ds.signal.edge_weights.data(), wn * sizeof(float));
  return ds;
}

void save_dtdg(const DtdgEvents& events, const std::string& path) {
  Writer w(path);
  w.scalar(kMagicDtdg);
  w.scalar(kVersion);
  w.scalar<uint32_t>(events.num_nodes);
  write_edges(w, events.base_edges);
  w.scalar<uint32_t>(static_cast<uint32_t>(events.deltas.size()));
  for (const EdgeDelta& d : events.deltas) {
    write_edges(w, d.additions);
    write_edges(w, d.deletions);
  }
  w.finish();
}

DtdgEvents load_dtdg(const std::string& path) {
  Reader r(path);
  r.expect_magic(kMagicDtdg);
  DtdgEvents events;
  events.num_nodes = r.scalar<uint32_t>();
  events.base_edges = read_edges(r, events.num_nodes);
  const uint32_t deltas = r.scalar<uint32_t>();
  events.deltas.reserve(deltas);
  for (uint32_t i = 0; i < deltas; ++i) {
    EdgeDelta d;
    d.additions = read_edges(r, events.num_nodes);
    d.deletions = read_edges(r, events.num_nodes);
    events.deltas.push_back(std::move(d));
  }
  // Structural validation: every delta must apply cleanly.
  events.snapshot_edges(events.num_timestamps() - 1);
  return events;
}

void save_checkpoint(const nn::Module& module, const std::string& path) {
  Writer w(path);
  w.scalar(kMagicCkpt);
  w.scalar(kVersion);
  const auto params = module.parameters();
  w.scalar<uint32_t>(static_cast<uint32_t>(params.size()));
  for (const nn::Parameter& p : params) {
    w.str(p.name);
    write_tensor(w, p.tensor);
  }
  w.finish();
}

void load_checkpoint(nn::Module& module, const std::string& path) {
  Reader r(path);
  r.expect_magic(kMagicCkpt);
  std::unordered_map<std::string, Tensor> loaded;
  const uint32_t count = r.scalar<uint32_t>();
  for (uint32_t i = 0; i < count; ++i) {
    std::string name = r.str(4096);
    loaded.emplace(std::move(name), read_tensor(r));
  }
  auto params = module.parameters();
  STG_CHECK(params.size() == loaded.size(), "checkpoint '", path, "' has ",
            loaded.size(), " tensors, model has ", params.size());
  for (nn::Parameter& p : params) {
    auto it = loaded.find(p.name);
    STG_CHECK(it != loaded.end(), "checkpoint '", path,
              "' is missing parameter '", p.name, "'");
    STG_CHECK(it->second.shape() == p.tensor.shape(), "parameter '", p.name,
              "' shape mismatch: checkpoint ", shape_str(it->second.shape()),
              " vs model ", shape_str(p.tensor.shape()));
    std::copy(it->second.data(), it->second.data() + it->second.numel(),
              p.tensor.data());
  }
}

EdgeList read_edge_list(const std::string& path, uint32_t* num_nodes_out) {
  std::ifstream in(path);
  STG_CHECK(in.good(), "cannot open edge list '", path, "'");
  struct Row {
    uint64_t src, dst;
    int64_t ts;
    uint64_t order;
  };
  std::vector<Row> rows;
  std::string line;
  uint64_t order = 0;
  bool any_ts = false;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    std::istringstream ls(line);
    Row row{0, 0, 0, order++};
    STG_CHECK(static_cast<bool>(ls >> row.src >> row.dst),
              "malformed line in '", path, "': '", line, "'");
    if (ls >> row.ts) any_ts = true;
    rows.push_back(row);
  }
  if (any_ts) {
    std::stable_sort(rows.begin(), rows.end(),
                     [](const Row& a, const Row& b) { return a.ts < b.ts; });
  }
  // Compact node ids in first-appearance order (deterministic).
  std::unordered_map<uint64_t, uint32_t> remap;
  remap.reserve(rows.size() * 2);
  auto id_of = [&](uint64_t raw) {
    auto [it, fresh] =
        remap.emplace(raw, static_cast<uint32_t>(remap.size()));
    (void)fresh;
    return it->second;
  };
  EdgeList edges;
  edges.reserve(rows.size());
  for (const Row& row : rows) {
    // Sequence the lookups: argument evaluation order is unspecified and
    // id assignment must follow (src, dst) appearance order.
    const uint32_t s = id_of(row.src);
    const uint32_t d = id_of(row.dst);
    edges.emplace_back(s, d);
  }
  if (num_nodes_out) *num_nodes_out = static_cast<uint32_t>(remap.size());
  return edges;
}

void write_edge_list(const EdgeList& edges, const std::string& path) {
  std::ofstream out(path);
  STG_CHECK(out.good(), "cannot open '", path, "' for writing");
  out << "# src dst\n";
  for (const auto& [s, d] : edges) out << s << " " << d << "\n";
  STG_CHECK(out.good(), "write to '", path, "' failed");
}

}  // namespace stgraph::io
