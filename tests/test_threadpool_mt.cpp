// Multi-worker thread-pool tests: these construct pools with explicit
// worker counts (independent of the host's core count and of the
// process-wide singleton) to exercise the synchronization paths — start
// broadcast, completion counting, reentrancy, and repeated launches —
// under real concurrency.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

#include "runtime/thread_pool.hpp"

namespace stgraph {
namespace {

TEST(ThreadPoolMt, AllLanesParticipate) {
  ThreadPool pool(3);  // 4 lanes total
  ASSERT_EQ(pool.lanes(), 4u);
  std::vector<std::atomic<int>> hits(4);
  pool.run_on_lanes([&](unsigned lane) { hits[lane].fetch_add(1); });
  for (unsigned l = 0; l < 4; ++l) EXPECT_EQ(hits[l].load(), 1) << l;
}

TEST(ThreadPoolMt, DistinctThreadsBackTheLanes) {
  ThreadPool pool(3);
  std::mutex mu;
  std::set<std::thread::id> ids;
  pool.run_on_lanes([&](unsigned) {
    // Slow the lanes slightly so workers overlap rather than one thread
    // stealing all lanes (not possible here, but keeps the test honest).
    volatile double x = 0;
    for (int i = 0; i < 10000; ++i) x += i;
    std::lock_guard<std::mutex> lock(mu);
    ids.insert(std::this_thread::get_id());
  });
  EXPECT_EQ(ids.size(), 4u);
}

TEST(ThreadPoolMt, ManySequentialLaunchesStayConsistent) {
  ThreadPool pool(2);
  std::atomic<long> total{0};
  for (int round = 0; round < 500; ++round) {
    pool.run_on_lanes([&](unsigned lane) {
      total.fetch_add(lane + 1, std::memory_order_relaxed);
    });
  }
  // Lanes 0,1,2 → 6 per round.
  EXPECT_EQ(total.load(), 500 * 6);
}

TEST(ThreadPoolMt, ReentrantLaunchRunsInline) {
  ThreadPool pool(2);
  std::atomic<int> outer{0}, inner{0};
  pool.run_on_lanes([&](unsigned) {
    outer.fetch_add(1);
    pool.run_on_lanes([&](unsigned inner_lane) {
      // Reentrant call must degrade to inline single-lane execution.
      EXPECT_EQ(inner_lane, 0u);
      inner.fetch_add(1);
    });
  });
  EXPECT_EQ(outer.load(), 3);
  EXPECT_EQ(inner.load(), 3);
}

TEST(ThreadPoolMt, ParallelMutationHasNoLostUpdates) {
  ThreadPool pool(3);
  // Each lane owns a disjoint slice; no torn writes expected.
  std::vector<int> data(4096, 0);
  const std::size_t chunk = data.size() / pool.lanes();
  for (int round = 0; round < 50; ++round) {
    pool.run_on_lanes([&](unsigned lane) {
      const std::size_t b = lane * chunk;
      const std::size_t e = lane + 1 == pool.lanes() ? data.size() : b + chunk;
      for (std::size_t i = b; i < e; ++i) data[i] += 1;
    });
  }
  for (std::size_t i = 0; i < data.size(); ++i) EXPECT_EQ(data[i], 50) << i;
}

TEST(ThreadPoolMt, ZeroWorkerPoolRunsInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.lanes(), 1u);
  int runs = 0;
  pool.run_on_lanes([&](unsigned lane) {
    EXPECT_EQ(lane, 0u);
    ++runs;
  });
  EXPECT_EQ(runs, 1);
}

TEST(ThreadPoolMt, DestructionJoinsCleanly) {
  // Construct/destruct repeatedly; TSAN/valgrind would flag leaks or
  // races, and a deadlock would hang the test.
  for (int i = 0; i < 20; ++i) {
    ThreadPool pool(2);
    std::atomic<int> n{0};
    pool.run_on_lanes([&](unsigned) { n.fetch_add(1); });
    EXPECT_EQ(n.load(), 3);
  }
}

}  // namespace
}  // namespace stgraph
