#include "baseline/trainer.hpp"

#include "nn/models.hpp"
#include "tensor/ops.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace stgraph::baseline {

PygTemporalModel::PygTemporalModel(int64_t in_features, int64_t hidden,
                                   Rng& rng, bool head)
    : tgcn_(in_features, hidden, rng) {
  register_module("tgcn", &tgcn_);
  if (head) {
    head_ = std::make_unique<nn::Linear>(hidden, 1, rng);
    register_module("head", head_.get());
  }
}

std::pair<Tensor, Tensor> PygTemporalModel::step(const CooSnapshot& g,
                                                 const Tensor& x,
                                                 const Tensor& h,
                                                 const float* edge_weights) {
  Tensor h_next = tgcn_.forward(g, x, h, edge_weights);
  if (head_) return {head_->forward(ops::relu(h_next)), h_next};
  return {h_next, h_next};
}

PygtTrainer::PygtTrainer(PygtTemporalGraph& graph, PygTemporalModel& model,
                         const datasets::TemporalSignal& signal,
                         core::TrainConfig config)
    : graph_(graph),
      model_(model),
      signal_(signal),
      config_(config),
      optimizer_(model.parameters(), config.lr) {
  STG_CHECK(signal_.num_timestamps() >= 1, "signal has no timestamps");
}

core::EpochStats PygtTrainer::run_epoch(bool training) {
  const uint32_t T =
      std::min<uint32_t>(signal_.num_timestamps(), graph_.num_timestamps());
  const float* edge_weights =
      signal_.edge_weights.empty() ? nullptr : signal_.edge_weights.data();

  Timer epoch_timer;
  double loss_total = 0.0;
  uint32_t steps = 0;
  Tensor h;

  for (uint32_t seq_start = 0; seq_start < T;
       seq_start += config_.sequence_length) {
    const uint32_t seq_end = std::min(T, seq_start + config_.sequence_length);
    Tensor loss_acc;
    for (uint32_t t = seq_start; t < seq_end; ++t) {
      const CooSnapshot& g = graph_.snapshot(t);
      const Tensor& x = signal_.features[t];
      if (!h.defined()) h = model_.initial_state(x.rows());
      auto [out, h_next] = model_.step(g, x, h, edge_weights);
      h = h_next;

      Tensor loss_t;
      if (config_.task == core::Task::kNodeRegression) {
        loss_t = ops::mse_loss(out, signal_.targets[t]);
      } else {
        const datasets::LinkSamples& ls = signal_.links[t];
        Tensor logits = nn::link_logits(out, ls.src, ls.dst);
        loss_t = ops::bce_with_logits_loss(logits, ls.labels);
      }
      loss_acc = loss_acc.defined() ? ops::add(loss_acc, loss_t) : loss_t;
      ++steps;
    }
    loss_total += loss_acc.item();
    if (training) {
      optimizer_.zero_grad();
      loss_acc.backward();
      optimizer_.step();
    }
    h = h.detach();
  }

  core::EpochStats stats;
  stats.loss = steps ? loss_total / steps : 0.0;
  stats.seconds = epoch_timer.seconds();
  stats.gnn_seconds = stats.seconds;  // no snapshot construction phase
  return stats;
}

core::EpochStats PygtTrainer::train_epoch() { return run_epoch(true); }

std::vector<core::EpochStats> PygtTrainer::train() {
  std::vector<core::EpochStats> stats;
  stats.reserve(config_.epochs);
  for (uint32_t e = 0; e < config_.epochs; ++e) stats.push_back(train_epoch());
  return stats;
}

double PygtTrainer::evaluate() {
  NoGradGuard ng;
  return run_epoch(false).loss;
}

}  // namespace stgraph::baseline
