// GPMAGraph tests: Algorithm 3 (reverse CSR from gapped arrays) against
// the dense reference, Algorithm 2 positioning/caching, and cross-format
// equivalence with NaiveGraph at every timestamp.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "gpma/gpma_graph.hpp"
#include "graph/naive_graph.hpp"
#include "util/rng.hpp"

namespace stgraph {
namespace {

EdgeList random_stream(uint32_t nodes, std::size_t events, uint64_t seed) {
  Rng rng(seed);
  EdgeList stream;
  for (std::size_t i = 0; i < events; ++i)
    stream.emplace_back(static_cast<uint32_t>(rng.next_below(nodes)),
                        static_cast<uint32_t>(rng.next_below(nodes)));
  return stream;
}

// Decode a (possibly gapped) view into (row, col, eid) triples.
std::set<std::tuple<uint32_t, uint32_t, uint32_t>> decode(const CsrView& v) {
  std::set<std::tuple<uint32_t, uint32_t, uint32_t>> out;
  for (uint32_t r = 0; r < v.num_nodes; ++r) {
    for (uint32_t j = v.row_offset[r]; j < v.row_offset[r + 1]; ++j) {
      if (v.has_gaps && v.col_indices[j] == kSpace) continue;
      out.insert({r, v.col_indices[j], v.eids[j]});
    }
  }
  return out;
}

TEST(ReverseGpma, MatchesDenseReferenceOnGappedInput) {
  // Hand-built gapped adjacency over 4 nodes:
  // row 0: [1, SPACE, 2], row 1: [SPACE], row 2: [0, 3], row 3: [].
  DeviceBuffer<uint32_t> ro(std::vector<uint32_t>{0, 3, 4, 6, 6},
                            MemCategory::kGraph);
  DeviceBuffer<uint32_t> col(
      std::vector<uint32_t>{1, kSpace, 2, kSpace, 0, 3}, MemCategory::kGraph);
  DeviceBuffer<uint32_t> eids(
      std::vector<uint32_t>{0, kSpace, 1, kSpace, 2, 3}, MemCategory::kGraph);
  // Edges: 0→1(e0), 0→2(e1), 2→0(e2), 2→3(e3). In-degrees: [1,1,1,1].
  DeviceBuffer<uint32_t> in_deg(std::vector<uint32_t>{1, 1, 1, 1},
                                MemCategory::kGraph);
  DeviceBuffer<uint32_t> r_ro, r_col, r_eids;
  reverse_gpma(4, ro, col, eids, in_deg, 4, r_ro, r_col, r_eids);

  EXPECT_EQ(r_ro.to_host(), (std::vector<uint32_t>{0, 1, 2, 3, 4}));
  // Reverse adjacency: 0←2(e2), 1←0(e0), 2←0(e1), 3←2(e3).
  EXPECT_EQ(r_col.to_host(), (std::vector<uint32_t>{2, 0, 0, 2}));
  EXPECT_EQ(r_eids.to_host(), (std::vector<uint32_t>{2, 0, 1, 3}));
}

TEST(ReverseGpma, InDegreeMismatchThrows) {
  DeviceBuffer<uint32_t> ro(std::vector<uint32_t>{0, 1}, MemCategory::kGraph);
  DeviceBuffer<uint32_t> col(std::vector<uint32_t>{0}, MemCategory::kGraph);
  DeviceBuffer<uint32_t> eids(std::vector<uint32_t>{0}, MemCategory::kGraph);
  DeviceBuffer<uint32_t> in_deg(std::vector<uint32_t>{5},
                                MemCategory::kGraph);
  DeviceBuffer<uint32_t> r1, r2, r3;
  EXPECT_THROW(reverse_gpma(1, ro, col, eids, in_deg, 1, r1, r2, r3),
               StgError);
}

class GpmaVsNaive : public ::testing::TestWithParam<double> {};

TEST_P(GpmaVsNaive, IdenticalSnapshotsAtEveryTimestamp) {
  const double pct = GetParam();
  DtdgEvents ev = window_edge_stream(50, random_stream(50, 1200, 71), pct);
  NaiveGraph naive(ev);
  GpmaGraph gpma(ev);
  ASSERT_EQ(gpma.num_timestamps(), naive.num_timestamps());

  auto edges_of = [](const SnapshotView& v, bool from_out) {
    std::set<std::pair<uint32_t, uint32_t>> out;
    const CsrView& view = from_out ? v.out_view : v.in_view;
    for (const auto& [r, c, e] : decode(view)) {
      out.insert(from_out ? std::make_pair(r, c) : std::make_pair(c, r));
    }
    return out;
  };

  // Forward sweep, then backward sweep (mimicking Algorithm 1's order).
  for (uint32_t t = 0; t < gpma.num_timestamps(); ++t) {
    SnapshotView vg = gpma.get_graph(t);
    SnapshotView vn = naive.get_graph(t);
    ASSERT_EQ(vg.num_edges, vn.num_edges) << "t=" << t;
    EXPECT_EQ(edges_of(vg, true), edges_of(vn, true)) << "t=" << t;
    EXPECT_EQ(edges_of(vg, false), edges_of(vn, false)) << "t=" << t;
    // Degree arrays agree.
    for (uint32_t v = 0; v < vg.num_nodes; ++v) {
      EXPECT_EQ(vg.in_degrees[v], vn.in_degrees[v]);
      EXPECT_EQ(vg.out_degrees[v], vn.out_degrees[v]);
    }
  }
  for (uint32_t t = gpma.num_timestamps(); t-- > 0;) {
    SnapshotView vg = gpma.get_backward_graph(t);
    SnapshotView vn = naive.get_backward_graph(t);
    EXPECT_EQ(edges_of(vg, true), edges_of(vn, true)) << "bwd t=" << t;
  }
}

INSTANTIATE_TEST_SUITE_P(PercentChanges, GpmaVsNaive,
                         ::testing::Values(2.0, 5.0, 10.0));

TEST(GpmaGraph, SharedEdgeLabelsBetweenViews) {
  DtdgEvents ev = window_edge_stream(30, random_stream(30, 600, 73), 5.0);
  GpmaGraph g(ev);
  for (uint32_t t : {0u, g.num_timestamps() / 2, g.num_timestamps() - 1}) {
    SnapshotView v = g.get_graph(t);
    // Map edge → label from the gapped out view; the in view must agree.
    std::map<std::pair<uint32_t, uint32_t>, uint32_t> labels;
    for (const auto& [r, c, e] : decode(v.out_view)) labels[{r, c}] = e;
    for (const auto& [r, c, e] : decode(v.in_view)) {
      // in view rows are destinations: edge is (c, r).
      auto it = labels.find({c, r});
      ASSERT_NE(it, labels.end());
      EXPECT_EQ(it->second, e) << "edge (" << c << "," << r << ") at t=" << t;
    }
    // Labels are a compact 0..m-1 range.
    std::set<uint32_t> unique_labels;
    for (const auto& [edge, label] : labels) unique_labels.insert(label);
    EXPECT_EQ(unique_labels.size(), labels.size());
    EXPECT_EQ(*unique_labels.rbegin(), labels.size() - 1);
  }
}

TEST(GpmaGraph, DegreeSortedProcessingOrders) {
  DtdgEvents ev = window_edge_stream(40, random_stream(40, 800, 79), 5.0);
  GpmaGraph g(ev);
  SnapshotView v = g.get_graph(1);
  for (uint32_t i = 0; i + 1 < v.num_nodes; ++i) {
    EXPECT_GE(v.in_degrees[v.in_view.node_ids[i]],
              v.in_degrees[v.in_view.node_ids[i + 1]]);
    EXPECT_GE(v.out_degrees[v.out_view.node_ids[i]],
              v.out_degrees[v.out_view.node_ids[i + 1]]);
  }
}

TEST(GpmaGraph, CacheAvoidsFullReplayAcrossSequences) {
  DtdgEvents ev = window_edge_stream(40, random_stream(40, 2000, 83), 2.0);
  ASSERT_GE(ev.num_timestamps(), 20u);

  auto run_training_pattern = [&](bool cache_enabled) {
    GpmaGraph g(ev);
    g.set_cache_enabled(cache_enabled);
    const uint32_t seq = 5;
    for (uint32_t s = 0; s + seq <= 20; s += seq) {
      for (uint32_t t = s; t < s + seq; ++t) g.get_graph(t);           // fwd
      for (uint32_t t = s + seq; t-- > s;) g.get_backward_graph(t);    // bwd
    }
    return g.delta_replays();
  };

  const uint64_t with_cache = run_training_pattern(true);
  const uint64_t without_cache = run_training_pattern(false);
  EXPECT_LT(with_cache, without_cache);
}

TEST(GpmaGraph, DeviceBytesBelowNaive) {
  DtdgEvents ev = window_edge_stream(60, random_stream(60, 3000, 89), 2.0);
  NaiveGraph naive(ev);
  GpmaGraph gpma(ev);
  // The headline memory claim: base graph + deltas beats one CSR pair per
  // snapshot when snapshots are many and similar.
  EXPECT_LT(gpma.device_bytes(), naive.device_bytes());
}

TEST(GpmaGraph, EdgeCountsTrackDeltas) {
  DtdgEvents ev = window_edge_stream(30, random_stream(30, 700, 97), 10.0);
  GpmaGraph g(ev);
  for (uint32_t t = 0; t < g.num_timestamps(); ++t) {
    EXPECT_EQ(g.num_edges_at(t), ev.snapshot_edges(t).size()) << t;
    SnapshotView v = g.get_graph(t);
    EXPECT_EQ(v.num_edges, g.num_edges_at(t));
  }
}

TEST(GpmaGraph, OutOfRangeTimestampThrows) {
  DtdgEvents ev = window_edge_stream(20, random_stream(20, 300, 101), 10.0);
  GpmaGraph g(ev);
  EXPECT_THROW(g.get_graph(g.num_timestamps()), StgError);
}

// ---- streaming append (serving ingestion path) ----------------------------

TEST(AppendDelta, StreamedTimelineMatchesPrebuiltOneOnBothFormats) {
  DtdgEvents ev = window_edge_stream(40, random_stream(40, 900, 131), 8.0);
  ASSERT_GE(ev.deltas.size(), 3u);

  // Reference: graphs built with the whole timeline up front.
  NaiveGraph ref(ev);

  // Streamed: start from the base snapshot, append_delta one at a time —
  // the serve::Server ingestion path.
  GpmaGraph gpma(DtdgEvents{ev.num_nodes, ev.base_edges, {}});
  NaiveGraph naive(DtdgEvents{ev.num_nodes, ev.base_edges, {}});
  EXPECT_TRUE(gpma.supports_append());
  EXPECT_TRUE(naive.supports_append());
  for (const EdgeDelta& d : ev.deltas) {
    gpma.append_delta(d);
    naive.append_delta(d);
  }
  ASSERT_EQ(gpma.num_timestamps(), ev.num_timestamps());
  ASSERT_EQ(naive.num_timestamps(), ev.num_timestamps());

  auto edge_pairs = [](const SnapshotView& v) {
    std::set<std::pair<uint32_t, uint32_t>> out;
    for (const auto& [r, c, e] : decode(v.out_view)) out.insert({r, c});
    return out;
  };
  for (uint32_t t = 0; t < ev.num_timestamps(); ++t) {
    const auto want = edge_pairs(ref.get_graph(t));
    EXPECT_EQ(edge_pairs(gpma.get_graph(t)), want) << "gpma t=" << t;
    EXPECT_EQ(edge_pairs(naive.get_graph(t)), want) << "naive t=" << t;
    EXPECT_EQ(gpma.num_edges_at(t), ref.num_edges_at(t)) << "t=" << t;
  }
}

TEST(AppendDelta, NaiveRejectsInvalidDeltaAndStaysUnchanged) {
  DtdgEvents ev;
  ev.num_nodes = 4;
  ev.base_edges = {{0, 1}, {1, 2}, {2, 3}};
  NaiveGraph g(ev);

  EdgeDelta missing;
  missing.deletions = {{3, 0}};  // not present
  EXPECT_THROW(g.append_delta(missing), StgError);
  EdgeDelta readd;
  readd.additions = {{0, 1}};  // already present
  EXPECT_THROW(g.append_delta(readd), StgError);
  EdgeDelta oob;
  oob.additions = {{0, 7}};
  EXPECT_THROW(g.append_delta(oob), StgError);

  // Strong guarantee: the timeline did not grow and t=0 still serves.
  EXPECT_EQ(g.num_timestamps(), 1u);
  EXPECT_EQ(g.get_graph(0).num_edges, 3u);

  EdgeDelta good;
  good.additions = {{3, 0}};
  good.deletions = {{0, 1}};
  g.append_delta(good);
  EXPECT_EQ(g.num_timestamps(), 2u);
  EXPECT_EQ(g.num_edges_at(1), 3u);
}

TEST(AppendDelta, GpmaRejectsOutOfBoundsNodesBeforeMutating) {
  DtdgEvents ev;
  ev.num_nodes = 4;
  ev.base_edges = {{0, 1}, {1, 2}};
  GpmaGraph g(ev);
  EdgeDelta oob;
  oob.additions = {{9, 0}};
  EXPECT_THROW(g.append_delta(oob), StgError);
  EXPECT_EQ(g.num_timestamps(), 1u);
  EXPECT_EQ(g.get_graph(0).num_edges, 2u);  // still positions cleanly
}

}  // namespace
}  // namespace stgraph
