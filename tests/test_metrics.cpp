// Metrics + GConvLSTM tests.
#include <gtest/gtest.h>

#include <cmath>

#include "core/trainer.hpp"
#include "tensor/ops.hpp"
#include "datasets/synthetic.hpp"
#include "graph/static_graph.hpp"
#include "nn/gconv_lstm.hpp"
#include "nn/metrics.hpp"
#include "util/rng.hpp"

namespace stgraph {
namespace {

using namespace nn::metrics;

TEST(Metrics, MaeRmseKnownValues) {
  Tensor p = Tensor::from_vector({1, 2, 3, 4}, {4});
  Tensor t = Tensor::from_vector({1, 4, 3, 0}, {4});
  EXPECT_DOUBLE_EQ(mae(p, t), (0 + 2 + 0 + 4) / 4.0);
  EXPECT_DOUBLE_EQ(rmse(p, t), std::sqrt((0 + 4 + 0 + 16) / 4.0));
  EXPECT_THROW(mae(p, Tensor::zeros({3})), StgError);
}

TEST(Metrics, MapeSkipsNearZeroTargets) {
  Tensor p = Tensor::from_vector({2, 5, 10}, {3});
  Tensor t = Tensor::from_vector({4, 0, 10}, {3});
  // Only entries 0 and 2 counted: |2-4|/4 = 0.5, |10-10|/10 = 0.
  EXPECT_DOUBLE_EQ(mape(p, t), 0.25);
  Tensor all_zero = Tensor::zeros({3});
  EXPECT_THROW(mape(p, all_zero), StgError);
}

TEST(Metrics, AucPerfectAndWorst) {
  Tensor labels = Tensor::from_vector({1, 1, 0, 0}, {4});
  EXPECT_DOUBLE_EQ(roc_auc(Tensor::from_vector({4, 3, 2, 1}, {4}), labels), 1.0);
  EXPECT_DOUBLE_EQ(roc_auc(Tensor::from_vector({1, 2, 3, 4}, {4}), labels), 0.0);
}

TEST(Metrics, AucRandomIsHalf) {
  Rng rng(5);
  const int64_t n = 4000;
  std::vector<float> scores(n), labels(n);
  for (int64_t i = 0; i < n; ++i) {
    scores[i] = rng.normal();
    labels[i] = rng.bernoulli(0.5) ? 1.0f : 0.0f;
  }
  const double auc = roc_auc(Tensor::from_vector(scores, {n}),
                             Tensor::from_vector(labels, {n}));
  EXPECT_NEAR(auc, 0.5, 0.03);
}

TEST(Metrics, AucHandlesTiesAsHalf) {
  // All scores equal → AUC must be exactly 0.5 via midranks.
  Tensor scores = Tensor::from_vector({1, 1, 1, 1}, {4});
  Tensor labels = Tensor::from_vector({1, 0, 1, 0}, {4});
  EXPECT_DOUBLE_EQ(roc_auc(scores, labels), 0.5);
}

TEST(Metrics, AucRequiresBothClasses) {
  Tensor scores = Tensor::from_vector({1, 2}, {2});
  EXPECT_THROW(roc_auc(scores, Tensor::ones({2})), StgError);
}

TEST(Metrics, BinaryAccuracyAndPrecisionAtK) {
  Tensor logits = Tensor::from_vector({2.0f, -1.0f, 0.5f, -0.2f}, {4});
  Tensor labels = Tensor::from_vector({1, 0, 0, 1}, {4});
  EXPECT_DOUBLE_EQ(binary_accuracy(logits, labels), 0.5);
  // Top-2 scores: logits 2.0 (label 1) and 0.5 (label 0).
  EXPECT_DOUBLE_EQ(precision_at_k(logits, labels, 2), 0.5);
  EXPECT_THROW(precision_at_k(logits, labels, 5), StgError);
}

TEST(GConvLstm, StepShapesAndStatePacking) {
  Rng rng(7);
  const uint32_t n = 10;
  StaticTemporalGraph graph(n, {{0, 1}, {1, 2}, {2, 3}, {3, 0}}, 2);
  core::TemporalExecutor exec(graph);
  nn::GConvLSTMRegressor model(3, 6, /*k=*/2, rng);

  Tensor state = model.initial_state(n);
  EXPECT_EQ(state.shape(), (Shape{n, 12}));  // H ‖ C
  exec.begin_forward_step(0);
  Tensor x = Tensor::randn({n, 3}, rng);
  auto [y, next_state] = model.step(exec, x, state, nullptr);
  EXPECT_EQ(y.shape(), (Shape{n, 1}));
  EXPECT_EQ(next_state.shape(), (Shape{n, 12}));
  ops::sum(y).backward();
  exec.verify_drained();
}

TEST(GConvLstm, TrainsOnStaticTemporalData) {
  datasets::StaticLoadOptions o;
  o.num_timestamps = 18;
  o.feature_size = 4;
  auto ds = datasets::load_pedalme(o);
  StaticTemporalGraph graph(ds.num_nodes, ds.edges, ds.num_timestamps);
  Rng rng(11);
  nn::GConvLSTMRegressor model(o.feature_size, 8, /*k=*/1, rng);
  core::TrainConfig cfg;
  cfg.epochs = 8;
  cfg.sequence_length = 6;
  cfg.task = core::Task::kNodeRegression;
  core::STGraphTrainer trainer(graph, model, ds.signal, cfg);
  auto stats = trainer.train();
  EXPECT_LT(stats.back().loss, stats.front().loss);
}

TEST(GConvLstm, CellStateEvolvesIndependentlyOfHidden) {
  Rng rng(13);
  const uint32_t n = 6;
  StaticTemporalGraph graph(n, {{0, 1}, {1, 2}}, 4);
  core::TemporalExecutor exec(graph);
  nn::GConvLSTM lstm(2, 3, /*k=*/1, rng);
  NoGradGuard ng;
  Tensor h, c;
  Tensor prev_c;
  for (uint32_t t = 0; t < 3; ++t) {
    exec.begin_forward_step(t);
    Tensor x = Tensor::randn({n, 2}, rng);
    auto [h2, c2] = lstm.forward(exec, x, h, c);
    // Cell state is not squashed by the output gate: h != tanh-free c.
    if (prev_c.defined()) {
      bool differs = false;
      for (int64_t i = 0; i < c2.numel(); ++i)
        differs = differs || c2.at(i) != prev_c.at(i);
      EXPECT_TRUE(differs);
    }
    prev_c = c2;
    h = h2;
    c = c2;
  }
}

}  // namespace
}  // namespace stgraph
