// Lock-order / blocking-hazard analyzer tests. Every case arms the
// analyzer with analyze::ScopedArm (programmatic arm + reset on scope
// exit), seeds a known-bad — or known-good — acquisition pattern on
// short-lived threads, and asserts on the recorded findings. The seeded
// inversions never actually wedge: the threads are sequenced with plain
// synchronization so each acquisition completes, which is exactly the
// schedule where only an ORDER analyzer (not TSan, not a stuck run) can
// see the latent deadlock.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "runtime/analyze.hpp"
#include "runtime/mutex.hpp"

namespace stgraph {
namespace {

using analyze::ScopedArm;

/// Sequencer for seeding exact interleavings: step(n) parks until the
/// global step counter reaches n. Uses raw std synchronization so the
/// harness itself is invisible to the analyzer under test.
class Steps {
 public:
  void reach(int n) {
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [&] { return step_ >= n; });
  }
  void advance(int n) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      step_ = n;
    }
    cv_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int step_ = 0;
};

TEST(Analyze, DisarmedRecordsNothing) {
  if (analyze::armed())
    GTEST_SKIP() << "suite launched with STGRAPH_DEADLOCK=1; the disarmed "
                    "behavior cannot be observed";
  Mutex a{"Analyze.Disarmed.a"};
  Mutex b{"Analyze.Disarmed.b"};
  {
    MutexLock la(a);
    MutexLock lb(b);
  }
  {
    MutexLock lb(b);
    MutexLock la(a);
  }
  EXPECT_EQ(analyze::cycle_count(), 0u);
  EXPECT_EQ(analyze::hazard_count(), 0u);
}

TEST(Analyze, AbbaInversionReportsCycleWithStacksAndSites) {
  ScopedArm arm;
  Mutex a{"Analyze.ABBA.a"};
  Mutex b{"Analyze.ABBA.b"};
  Steps seq;

  // Thread 1 takes a -> b, thread 2 takes b -> a, strictly sequenced so
  // both acquisitions succeed (the latent bug, not the hang).
  std::thread t1([&] {
    MutexLock la(a);
    MutexLock lb(b);
    seq.advance(1);
  });
  std::thread t2([&] {
    seq.reach(1);
    MutexLock lb(b);
    MutexLock la(a);
  });
  t1.join();
  t2.join();

  ASSERT_EQ(analyze::cycle_count(), 1u);
  const std::vector<analyze::LockCycle> cycles = analyze::cycles();
  ASSERT_EQ(cycles.size(), 1u);
  const analyze::LockCycle& c = cycles[0];
  ASSERT_EQ(c.edges.size(), 2u);

  // Both site labels appear, in cycle order (a->b then b->a or rotated).
  std::vector<std::string> froms;
  for (const auto& e : c.edges) froms.push_back(e.from_site);
  EXPECT_NE(std::find(froms.begin(), froms.end(), "Analyze.ABBA.a"),
            froms.end());
  EXPECT_NE(std::find(froms.begin(), froms.end(), "Analyze.ABBA.b"),
            froms.end());
  for (const auto& e : c.edges) {
    // Both acquisition stacks ride on every edge: the stack that took the
    // held lock and the stack attempting the one that closed the cycle.
    EXPECT_FALSE(e.holder_stack.empty()) << e.from_site << "->" << e.to_site;
    EXPECT_FALSE(e.acquirer_stack.empty()) << e.from_site << "->" << e.to_site;
    EXPECT_NE(e.thread_id, 0u);
  }
  // The human-readable rendering names both sites.
  const std::string text = c.to_string();
  EXPECT_NE(text.find("Analyze.ABBA.a"), std::string::npos);
  EXPECT_NE(text.find("Analyze.ABBA.b"), std::string::npos);

  // The verify::Report plumbing carries the finding under its checker tag.
  const verify::Report r = analyze::as_report();
  EXPECT_FALSE(r.ok());
  ASSERT_FALSE(r.findings().empty());
  EXPECT_EQ(r.findings()[0].checker, "analyze.lock-order");
}

TEST(Analyze, ThreeLockCycleReportsAllThreeSites) {
  ScopedArm arm;
  Mutex a{"Analyze.Ring.a"};
  Mutex b{"Analyze.Ring.b"};
  Mutex c{"Analyze.Ring.c"};
  Steps seq;

  std::thread t1([&] {
    MutexLock la(a);
    MutexLock lb(b);
    seq.advance(1);
  });
  std::thread t2([&] {
    seq.reach(1);
    MutexLock lb(b);
    MutexLock lc(c);
    seq.advance(2);
  });
  std::thread t3([&] {
    seq.reach(2);
    MutexLock lc(c);
    MutexLock la(a);
  });
  t1.join();
  t2.join();
  t3.join();

  ASSERT_EQ(analyze::cycle_count(), 1u);
  const analyze::LockCycle ring = analyze::cycles()[0];
  ASSERT_EQ(ring.edges.size(), 3u);
  const std::string text = ring.to_string();
  EXPECT_NE(text.find("Analyze.Ring.a"), std::string::npos);
  EXPECT_NE(text.find("Analyze.Ring.b"), std::string::npos);
  EXPECT_NE(text.find("Analyze.Ring.c"), std::string::npos);
}

TEST(Analyze, ConsistentOrderIsClean) {
  ScopedArm arm;
  Mutex a{"Analyze.Ordered.a"};
  Mutex b{"Analyze.Ordered.b"};
  for (int i = 0; i < 4; ++i) {
    MutexLock la(a);
    MutexLock lb(b);
  }
  EXPECT_EQ(analyze::cycle_count(), 0u);
}

TEST(Analyze, TryLockInversionCreatesNoEdge) {
  ScopedArm arm;
  Mutex a{"Analyze.Try.a"};
  Mutex b{"Analyze.Try.b"};
  {
    MutexLock la(a);
    MutexLock lb(b);  // order a -> b recorded
  }
  {
    MutexLock lb(b);
    // A try_lock cannot wedge: on contention it gives up instead of
    // blocking, so taking a under b this way must NOT close a cycle.
    ASSERT_TRUE(a.try_lock());
    a.unlock();
  }
  EXPECT_EQ(analyze::cycle_count(), 0u);

  // Same for the deadline-bounded scoped lock.
  {
    MutexLock lb(b);
    MutexTimedLock la(a, std::chrono::milliseconds(50));
    ASSERT_TRUE(la.owns());
  }
  EXPECT_EQ(analyze::cycle_count(), 0u);
}

TEST(Analyze, SameInstanceRelockIsASelfCycle) {
  ScopedArm arm;
  Mutex a{"Analyze.Relock.a"};
  a.lock();
  // A second blocking acquisition of the SAME instance on this thread is a
  // guaranteed self-deadlock. Calling Mutex::lock() would wedge the test
  // (the native timed_mutex does not detect relocking), so drive the
  // attempt hook directly — exactly what lock() runs BEFORE it blocks,
  // which is why a real relock still gets its report out.
  analyze::on_lock_attempt(&a, a.site());
  a.unlock();
  ASSERT_EQ(analyze::cycle_count(), 1u);
  const analyze::LockCycle c = analyze::cycles()[0];
  ASSERT_EQ(c.edges.size(), 1u);
  EXPECT_EQ(c.edges[0].from_site, "Analyze.Relock.a");
  EXPECT_EQ(c.edges[0].to_site, "Analyze.Relock.a");
}

TEST(Analyze, CvWaitHoldingSecondLockIsAHazard) {
  ScopedArm arm;
  Mutex outer{"Analyze.CvHazard.outer"};
  Mutex inner{"Analyze.CvHazard.inner"};
  ConditionVariable cv;
  std::atomic<bool> go{false};

  std::thread waiter([&] {
    MutexLock lo(outer);  // the extra lock a cv-wait must not sit on
    MutexLock li(inner);
    while (!go.load()) cv.wait_for(li, std::chrono::milliseconds(5));
  });
  std::thread waker([&] {
    go.store(true);
    cv.notify_all();
  });
  waiter.join();
  waker.join();

  ASSERT_GE(analyze::hazard_count(), 1u);
  const std::vector<analyze::BlockingHazard> hs = analyze::hazards();
  bool found = false;
  for (const auto& h : hs) {
    if (h.what != "cv-wait-for") continue;
    for (const auto& s : h.held_sites)
      if (s == "Analyze.CvHazard.outer") found = true;
    EXPECT_FALSE(h.stack.empty());
  }
  EXPECT_TRUE(found) << analyze::format_report();

  const verify::Report r = analyze::as_report();
  EXPECT_FALSE(r.ok());
  bool tagged = false;
  for (const auto& f : r.findings())
    if (f.checker == "analyze.blocking-hazard") tagged = true;
  EXPECT_TRUE(tagged);
}

TEST(Analyze, CvWaitHoldingOnlyTheWaitedLockIsClean) {
  ScopedArm arm;
  Mutex mu{"Analyze.CvClean.mu"};
  ConditionVariable cv;
  std::atomic<bool> go{false};
  std::thread waiter([&] {
    MutexLock lk(mu);
    while (!go.load()) cv.wait_for(lk, std::chrono::milliseconds(5));
  });
  go.store(true);
  cv.notify_all();
  waiter.join();
  EXPECT_EQ(analyze::hazard_count(), 0u);
}

TEST(Analyze, BlockingCallUnderLockIsAHazard) {
  ScopedArm arm;
  Mutex mu{"Analyze.Blocking.mu"};
  {
    MutexLock lk(mu);
    analyze::on_blocking_call("file-io(test)");
  }
  ASSERT_EQ(analyze::hazard_count(), 1u);
  const analyze::BlockingHazard h = analyze::hazards()[0];
  EXPECT_EQ(h.what, "file-io(test)");
  ASSERT_EQ(h.held_sites.size(), 1u);
  EXPECT_EQ(h.held_sites[0], "Analyze.Blocking.mu");
}

TEST(Analyze, BlockingOkScopeExemptsTheCall) {
  ScopedArm arm;
  Mutex mu{"Analyze.Allowed.mu"};
  {
    MutexLock lk(mu);
    STG_BLOCKING_OK("test: this blocking call under mu is the design");
    analyze::on_blocking_call("file-io(test)");
  }
  EXPECT_EQ(analyze::hazard_count(), 0u);

  // The exemption is scoped: the same call outside the scope reports.
  {
    MutexLock lk(mu);
    analyze::on_blocking_call("file-io(test)");
  }
  EXPECT_EQ(analyze::hazard_count(), 1u);
}

TEST(Analyze, BlockingCallWithNoLocksHeldIsClean) {
  ScopedArm arm;
  analyze::on_blocking_call("epoll_wait");
  analyze::on_blocking_call("thread-join");
  EXPECT_EQ(analyze::hazard_count(), 0u);
}

TEST(Analyze, DuplicateCyclesReportOnce) {
  ScopedArm arm;
  Mutex a{"Analyze.Dup.a"};
  Mutex b{"Analyze.Dup.b"};
  for (int round = 0; round < 3; ++round) {
    Steps seq;
    std::thread t1([&] {
      MutexLock la(a);
      MutexLock lb(b);
      seq.advance(1);
    });
    std::thread t2([&] {
      seq.reach(1);
      MutexLock lb(b);
      MutexLock la(a);
    });
    t1.join();
    t2.join();
  }
  EXPECT_EQ(analyze::cycle_count(), 1u);
}

TEST(Analyze, UnlabeledInstancesDoNotAliasIntoFalseCycles) {
  ScopedArm arm;
  // Two separate unlabeled mutexes taken in opposite orders by design
  // would be a real inversion; but two pairs of DISTINCT unlabeled
  // instances each taken in one order must not alias into a cycle the way
  // a shared per-class label would merge them.
  Mutex a1, b1;  // pair 1: a1 -> b1
  Mutex a2, b2;  // pair 2: b2 -> a2 — unrelated instances
  {
    MutexLock x(a1);
    MutexLock y(b1);
  }
  {
    MutexLock y(b2);
    MutexLock x(a2);
  }
  EXPECT_EQ(analyze::cycle_count(), 0u);
}

TEST(Analyze, ResetClearsFindingsAndOrders) {
  ScopedArm arm;
  Mutex a{"Analyze.Reset.a"};
  Mutex b{"Analyze.Reset.b"};
  Steps seq;
  std::thread t1([&] {
    MutexLock la(a);
    MutexLock lb(b);
    seq.advance(1);
  });
  std::thread t2([&] {
    seq.reach(1);
    MutexLock lb(b);
    MutexLock la(a);
  });
  t1.join();
  t2.join();
  ASSERT_EQ(analyze::cycle_count(), 1u);

  analyze::reset();
  EXPECT_EQ(analyze::cycle_count(), 0u);
  EXPECT_EQ(analyze::hazard_count(), 0u);
  // The graph is empty again: one leg of the old inversion alone is clean.
  {
    MutexLock lb(b);
    MutexLock la(a);
  }
  EXPECT_EQ(analyze::cycle_count(), 0u);
}

TEST(Analyze, FormatReportNamesEverything) {
  ScopedArm arm;
  Mutex a{"Analyze.Report.a"};
  Mutex b{"Analyze.Report.b"};
  Steps seq;
  std::thread t1([&] {
    MutexLock la(a);
    MutexLock lb(b);
    {
      STG_BLOCKING_OK("test: exempted on purpose");
      analyze::on_blocking_call("file-io(exempt)");
    }
    analyze::on_blocking_call("file-io(caught)");
    seq.advance(1);
  });
  std::thread t2([&] {
    seq.reach(1);
    MutexLock lb(b);
    MutexLock la(a);
  });
  t1.join();
  t2.join();

  const std::string report = analyze::format_report();
  EXPECT_NE(report.find("Analyze.Report.a"), std::string::npos);
  EXPECT_NE(report.find("Analyze.Report.b"), std::string::npos);
  EXPECT_NE(report.find("file-io(caught)"), std::string::npos);
  EXPECT_EQ(report.find("file-io(exempt)"), std::string::npos);
}

}  // namespace
}  // namespace stgraph
