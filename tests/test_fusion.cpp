// Fusing tape compiler tests: elementwise-IR passes, derived backward
// programs (saved transcendental intermediates), and — the heart of the
// PR's contract — randomized bit-parity fuzzing between the fused
// single-pass interpreter and the STGRAPH_FUSION=off replay through the
// ops:: tape. "Parity" here is memcmp over raw float bits, not tolerance:
// losses, outputs, parameters, and gradients must be IDENTICAL, including
// through NaN/Inf-salted inputs and odd feature widths that leave SIMD
// remainder lanes. Also covered: the per-(signature, rows, cols) program
// cache (zero steady-state compiles), the STGRAPH_VALIDATE stale-plan
// audit, the fused GCN bias epilogue, and the bias-grad scratch arena.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <iterator>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "compiler/autodiff.hpp"
#include "compiler/fusion.hpp"
#include "compiler/ir.hpp"
#include "compiler/passes.hpp"
#include "compiler/trace.hpp"
#include "core/executor.hpp"
#include "core/trainer.hpp"
#include "datasets/synthetic.hpp"
#include "graph/static_graph.hpp"
#include "nn/gcn.hpp"
#include "nn/gconv_gru.hpp"
#include "nn/gconv_lstm.hpp"
#include "nn/models.hpp"
#include "tensor/ops.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "verify/validate.hpp"

namespace stgraph {
namespace {

namespace fu = compiler::fusion;
using compiler::EwOp;
using compiler::EwProgram;
using compiler::EwTracer;

/// Restore the global fusion toggle on scope exit (tests flip it freely).
struct FusionGuard {
  bool prev = fu::fusion_enabled();
  ~FusionGuard() { fu::set_fusion_enabled(prev); }
};

void expect_bitwise(const Tensor& a, const Tensor& b, const std::string& what) {
  ASSERT_TRUE(a.defined()) << what << ": lhs undefined";
  ASSERT_TRUE(b.defined()) << what << ": rhs undefined";
  ASSERT_EQ(a.numel(), b.numel()) << what;
  EXPECT_EQ(std::memcmp(a.data(), b.data(),
                        sizeof(float) * static_cast<size_t>(a.numel())),
            0)
      << what << ": float bits differ";
}

/// Non-finite salting mode. NaN and Inf are salted in SEPARATE fuzz
/// instances on purpose: parity is bitwise as long as only one NaN bit
/// pattern is in flight (the salted +qNaN, or the hardware's ffc00000
/// "indefinite" that invalid ops like Inf−Inf produce). When two binary-op
/// operands are both NaN with DIFFERENT patterns, IEEE lets the hardware
/// return either payload and C does not pin which operand the compiler
/// places first — the result's sign/payload is codegen-dependent in both
/// the fused interpreter and the ops:: replay, so no contract can cover
/// it. Salting them separately keeps every instance single-pattern.
enum class Salt { kNone, kNan, kInf };

/// Overwrite a handful of entries with the mode's specials — parity must
/// hold through non-finite propagation, not just on well-behaved data.
void salt(Tensor& t, Rng& rng, Salt mode) {
  if (mode == Salt::kNone) return;
  static const float nan_set[3] = {std::numeric_limits<float>::quiet_NaN(),
                                   0.0f, -0.0f};
  static const float inf_set[4] = {std::numeric_limits<float>::infinity(),
                                   -std::numeric_limits<float>::infinity(),
                                   0.0f, -0.0f};
  float* d = t.data();
  const int64_t n = t.numel();
  const int64_t count = n / 16 + 1;
  for (int64_t i = 0; i < count; ++i) {
    float v = mode == Salt::kNan
                  ? nan_set[rng.next_below(3)]
                  : inf_set[rng.next_below(4)];
    d[rng.next_below(static_cast<uint64_t>(n))] = v;
  }
}

// ---- elementwise IR passes -----------------------------------------------

TEST(EwPasses, CseMergesDuplicateNodes) {
  // (a+b)·σ(a+b): the tracer records two identical kAdd nodes; CSE must
  // collapse them to the earliest occurrence.
  EwProgram p = compiler::trace_elementwise([](EwTracer& t) {
    auto a = t.in(), b = t.in();
    return t.mul(t.add(a, b), t.sigmoid(t.add(a, b)));
  });
  // 2 inputs + add + add + sigmoid + mul.
  ASSERT_EQ(p.nodes.size(), 6u);
  EwProgram o = compiler::optimize_elementwise(p);
  EXPECT_EQ(o.nodes.size(), 5u);  // one kAdd merged away
  EXPECT_EQ(o.inputs.size(), 2u);
  // Idempotent.
  EwProgram o2 = compiler::optimize_elementwise(o);
  EXPECT_TRUE(o2 == o);
}

TEST(EwPasses, DceDropsDeadNodesKeepsInputs) {
  EwProgram p = compiler::trace_elementwise([](EwTracer& t) {
    auto a = t.in(), b = t.in();
    (void)t.exp(t.mul(a, a));  // dead chain
    return t.add(a, b);
  });
  ASSERT_EQ(p.nodes.size(), 5u);
  EwProgram o = compiler::ew_eliminate_dead(p);
  EXPECT_EQ(o.nodes.size(), 3u);  // inputs survive even if one were unused
  EXPECT_EQ(o.inputs.size(), 2u);
  ASSERT_EQ(o.outputs.size(), 1u);
  EXPECT_EQ(o.nodes[static_cast<size_t>(o.outputs[0])].op, EwOp::kAdd);
}

TEST(EwPasses, HashAndPrintDistinguishPrograms) {
  auto sig_add = compiler::trace_elementwise(
      [](EwTracer& t) { return t.sigmoid(t.add(t.in(), t.in())); });
  auto sig_add2 = compiler::trace_elementwise(
      [](EwTracer& t) { return t.sigmoid(t.add(t.in(), t.in())); });
  auto tanh_add = compiler::trace_elementwise(
      [](EwTracer& t) { return t.tanh(t.add(t.in(), t.in())); });
  EXPECT_TRUE(sig_add == sig_add2);
  EXPECT_EQ(sig_add.hash(), sig_add2.hash());
  EXPECT_NE(sig_add.hash(), tanh_add.hash());
  EXPECT_NE(sig_add.to_string().find("sig"), std::string::npos);
  EXPECT_NE(tanh_add.to_string().find("tanh"), std::string::npos);
  // Immediates participate in the signature (0.1 vs 0.2 slope).
  auto l1 = compiler::trace_elementwise(
      [](EwTracer& t) { return t.leaky_relu(t.in(), 0.1f); });
  auto l2 = compiler::trace_elementwise(
      [](EwTracer& t) { return t.leaky_relu(t.in(), 0.2f); });
  EXPECT_NE(l1.hash(), l2.hash());
}

// ---- derived backward programs -------------------------------------------

TEST(EwAutodiff, SavedTranscendentalsBecomeBackwardInputs) {
  EwProgram fwd = compiler::optimize_elementwise(compiler::trace_elementwise(
      [](EwTracer& t) { return t.sigmoid(t.add(t.in(), t.in())); }));
  compiler::EwBackward bw = compiler::differentiate_elementwise(fwd);
  // The sigmoid value is read back from the forward pass, not recomputed:
  // exactly one saved node, fed through slot num_inputs + 1 (after the
  // grad_out slot).
  ASSERT_EQ(bw.saved.size(), 1u);
  EXPECT_EQ(fwd.nodes[static_cast<size_t>(bw.saved[0])].op, EwOp::kSigmoid);
  EXPECT_EQ(bw.prog.inputs.size(), fwd.inputs.size() + 2u);
  // No transcendental evaluation survives in the backward program.
  for (const compiler::EwNode& n : bw.prog.nodes) {
    EXPECT_NE(n.op, EwOp::kSigmoid);
    EXPECT_NE(n.op, EwOp::kTanh);
    EXPECT_NE(n.op, EwOp::kExp);
  }
  // Both inputs get gradients (σ'·g each).
  ASSERT_EQ(bw.input_grads.size(), 2u);
  EXPECT_GE(bw.input_grads[0], 0);
  EXPECT_GE(bw.input_grads[1], 0);
}

TEST(EwAutodiff, BiasInputGradientProduced) {
  EwProgram fwd = compiler::optimize_elementwise(compiler::trace_elementwise(
      [](EwTracer& t) { return t.tanh(t.add_bias(t.in(), t.in_bias())); }));
  compiler::EwBackward bw = compiler::differentiate_elementwise(fwd);
  ASSERT_EQ(bw.input_grads.size(), 2u);
  EXPECT_GE(bw.input_grads[0], 0);
  EXPECT_GE(bw.input_grads[1], 0);  // pointwise; executor column-reduces
  ASSERT_EQ(bw.saved.size(), 1u);
  EXPECT_EQ(fwd.nodes[static_cast<size_t>(bw.saved[0])].op, EwOp::kTanh);
}

// ---- randomized fused-vs-replay parity fuzz ------------------------------

/// One fused region under test: how many [N,F] / [F] inputs it takes and
/// how to invoke it.
struct Region {
  const char* name;
  int num_mats;
  int num_bias;
  Tensor (*run)(const std::vector<Tensor>& in);
  /// False for regions whose BACKWARD inherently mixes NaN bit patterns:
  /// d(a/b)/db negates the propagated NaN (−a/b²) and then multiplies it
  /// against the un-negated one, hitting the two-distinct-NaN-operands
  /// carve-out documented in fusion.hpp. Only the synthetic div region is
  /// affected — no production cell region divides.
  bool nan_safe_backward;
};

Tensor run_sigmoid_add(const std::vector<Tensor>& in) {
  return fu::sigmoid_add(in[0], in[1]);
}
Tensor run_tanh_add(const std::vector<Tensor>& in) {
  return fu::tanh_add(in[0], in[1]);
}
Tensor run_gate_combine(const std::vector<Tensor>& in) {
  return fu::gate_combine(in[0], in[1], in[2]);
}
Tensor run_lstm_cell(const std::vector<Tensor>& in) {
  return fu::lstm_cell_state(in[0], in[1], in[2], in[3]);
}
Tensor run_mul_tanh(const std::vector<Tensor>& in) {
  return fu::mul_tanh(in[0], in[1]);
}
Tensor run_bias_sigmoid(const std::vector<Tensor>& in) {
  return fu::bias_sigmoid(in[0], in[1]);
}
Tensor run_bias_tanh(const std::vector<Tensor>& in) {
  return fu::bias_tanh(in[0], in[1]);
}
/// A synthetic region exercising the ops the cell helpers do not touch
/// (sub/div/scalars/relu/leaky/exp) through the public FusedOp API.
Tensor run_mixed(const std::vector<Tensor>& in) {
  static const fu::FusedOp op("test_mixed", [](EwTracer& t) {
    auto a = t.in(), b = t.in();
    auto d = t.div(t.sub(a, b), t.add_scalar(t.mul(b, b), 1.0f));
    auto r = t.leaky_relu(t.relu(d), 0.2f);
    return t.mul(r, t.exp(t.mul_scalar(a, 0.5f)));
  });
  return op(in);
}

const Region kRegions[] = {
    {"sigmoid_add", 2, 0, run_sigmoid_add, true},
    {"tanh_add", 2, 0, run_tanh_add, true},
    {"gate_combine", 3, 0, run_gate_combine, true},
    {"lstm_cell_state", 4, 0, run_lstm_cell, true},
    {"mul_tanh", 2, 0, run_mul_tanh, true},
    {"bias_sigmoid", 1, 1, run_bias_sigmoid, true},
    {"bias_tanh", 1, 1, run_bias_tanh, true},
    {"mixed", 2, 0, run_mixed, false},
};

std::vector<Tensor> make_inputs(const Region& r, int64_t n, int64_t f,
                                Rng& rng, Salt mode) {
  std::vector<Tensor> in;
  for (int i = 0; i < r.num_mats; ++i) {
    Tensor t = Tensor::randn({n, f}, rng, 1.2f);
    salt(t, rng, mode);
    in.push_back(t);
  }
  for (int i = 0; i < r.num_bias; ++i) {
    Tensor t = Tensor::randn({f}, rng, 0.7f);
    salt(t, rng, mode);
    in.push_back(t);
  }
  return in;
}

const Salt kSalts[] = {Salt::kNone, Salt::kNan, Salt::kInf};

// Odd widths leave SIMD remainder lanes and straddle the interpreter's
// block size (kEwBlock = 64); 64/65 hit the exact-block and block+1 edges.
const int64_t kWidths[] = {1, 7, 13, 64, 65};

TEST(FusionParity, ForwardFuzzNanInfSalted) {
  FusionGuard guard;
  for (size_t ri = 0; ri < std::size(kRegions); ++ri) {
    const Region& r = kRegions[ri];
    for (int64_t f : kWidths) {
      for (Salt mode : kSalts) {
        Rng rng(0x5EED0000u + static_cast<uint64_t>(f) * 131 + ri * 17 +
                static_cast<uint64_t>(mode));
        std::vector<Tensor> in = make_inputs(r, 33, f, rng, mode);
        fu::set_fusion_enabled(true);
        Tensor fused = r.run(in);
        fu::set_fusion_enabled(false);
        Tensor replay = r.run(in);
        expect_bitwise(fused, replay, std::string(r.name) +
                                          " F=" + std::to_string(f) +
                                          " salt=" +
                                          std::to_string(int(mode)));
      }
    }
  }
}

TEST(FusionParity, BackwardFuzzGradientsBitwise) {
  FusionGuard guard;
  for (size_t ri = 0; ri < std::size(kRegions); ++ri) {
    const Region& r = kRegions[ri];
    for (int64_t f : kWidths) {
      for (Salt mode : kSalts) {
      if (mode == Salt::kNan && !r.nan_safe_backward) continue;
      Rng rng(0xBAC0000u + static_cast<uint64_t>(f) * 733 + ri * 17 +
              static_cast<uint64_t>(mode));
      std::vector<Tensor> base = make_inputs(r, 21, f, rng, mode);
      Tensor gseed = Tensor::randn({21, f}, rng, 1.0f);

      // Fresh requires-grad leaves per mode over the same bits.
      auto run_mode = [&](bool fused, std::vector<Tensor>& leaves) {
        fu::set_fusion_enabled(fused);
        leaves.clear();
        for (const Tensor& b : base) {
          Tensor l = b.detach();
          l.set_requires_grad(true);
          leaves.push_back(l);
        }
        Tensor y = r.run(leaves);
        y.backward(gseed);
        return y;
      };
      std::vector<Tensor> lv_on, lv_off;
      Tensor y_on = run_mode(true, lv_on);
      Tensor y_off = run_mode(false, lv_off);

      const std::string tag = std::string(r.name) +
                              " F=" + std::to_string(f) +
                              " salt=" + std::to_string(int(mode));
      expect_bitwise(y_on, y_off, tag + " out");
      for (size_t i = 0; i < lv_on.size(); ++i)
        expect_bitwise(lv_on[i].grad(), lv_off[i].grad(),
                       tag + " grad_in" + std::to_string(i));
      }
    }
  }
}

// ---- fused GCN bias epilogue ---------------------------------------------

TEST(FusionParity, GcnEpilogueBitwise) {
  // Fusion ON grafts the bias add onto the aggregation kernel's
  // accumulator writeback; OFF runs kernel-then-ops::add_bias. Outputs
  // and every gradient must carry identical bits.
  FusionGuard guard;
  const uint32_t n = 37;
  Rng rng_e(21);
  EdgeList edges;
  for (int i = 0; i < 140; ++i) {
    uint32_t s = static_cast<uint32_t>(rng_e.next_below(n));
    uint32_t d = static_cast<uint32_t>(rng_e.next_below(n));
    if (s != d) edges.emplace_back(s, d);
  }
  std::vector<float> ew(edges.size());
  for (auto& w : ew) w = rng_e.uniform(0.5f, 1.5f);
  Rng rng_x(22);
  Tensor x = Tensor::randn({n, 5}, rng_x);

  const int64_t gcn_widths[] = {1, 7, 32};
  for (int64_t f : gcn_widths) {
    auto run_mode = [&](bool fused, Tensor* gw, Tensor* gb) {
      fu::set_fusion_enabled(fused);
      Rng rng_w(0x60C0 + static_cast<uint64_t>(f));
      nn::SeastarGCNConv conv(5, f, rng_w);
      StaticTemporalGraph graph(n, edges, 1);
      core::TemporalExecutor exec(graph);
      exec.begin_forward_step(0);
      Tensor xi = x.detach();
      xi.set_requires_grad(true);
      Tensor y = conv.forward(exec, xi, ew.data());
      ops::sum(ops::mul(y, y)).backward();
      exec.verify_drained();
      *gw = conv.parameters()[0].tensor.grad();
      *gb = conv.parameters()[1].tensor.grad();
      return y;
    };
    Tensor gw_on, gb_on, gw_off, gb_off;
    Tensor y_on = run_mode(true, &gw_on, &gb_on);
    Tensor y_off = run_mode(false, &gw_off, &gb_off);
    const std::string tag = "gcn F=" + std::to_string(f);
    expect_bitwise(y_on, y_off, tag + " out");
    expect_bitwise(gw_on, gw_off, tag + " grad_W");
    expect_bitwise(gb_on, gb_off, tag + " grad_b");
  }
}

// ---- program cache -------------------------------------------------------

TEST(FusionCache, KeyedBySignatureAndShape) {
  FusionGuard guard;
  fu::set_fusion_enabled(true);
  fu::clear_fusion_cache();
  fu::reset_fusion_stats();
  Rng rng(31);
  Tensor a = Tensor::randn({8, 5}, rng), b = Tensor::randn({8, 5}, rng);

  (void)fu::sigmoid_add(a, b);
  EXPECT_EQ(fu::fusion_stats().cache_misses, 1u);
  EXPECT_EQ(fu::fusion_cache_size(), 1u);

  (void)fu::sigmoid_add(b, a);  // same signature, same shape → hit
  EXPECT_EQ(fu::fusion_stats().cache_hits, 1u);
  EXPECT_EQ(fu::fusion_stats().cache_misses, 1u);

  Tensor c = Tensor::randn({9, 5}, rng), d = Tensor::randn({9, 5}, rng);
  (void)fu::sigmoid_add(c, d);  // same signature, new rows → new plan
  EXPECT_EQ(fu::fusion_stats().cache_misses, 2u);
  EXPECT_EQ(fu::fusion_cache_size(), 2u);

  (void)fu::tanh_add(a, b);  // new signature → new plan
  EXPECT_EQ(fu::fusion_stats().cache_misses, 3u);
  EXPECT_EQ(fu::fusion_cache_size(), 3u);

  fu::clear_fusion_cache();
  EXPECT_EQ(fu::fusion_cache_size(), 0u);
}

TEST(FusionCache, OffPathCompilesNothing) {
  FusionGuard guard;
  fu::set_fusion_enabled(false);
  fu::clear_fusion_cache();
  fu::reset_fusion_stats();
  Rng rng(33);
  Tensor a = Tensor::randn({6, 4}, rng), b = Tensor::randn({6, 4}, rng);
  (void)fu::sigmoid_add(a, b);
  EXPECT_EQ(fu::fusion_cache_size(), 0u);
  EXPECT_EQ(fu::fusion_stats().cache_misses, 0u);
  EXPECT_GE(fu::fusion_stats().unfused_replays, 1u);
  EXPECT_EQ(fu::fusion_stats().fused_forward, 0u);
}

TEST(FusionCache, ZeroSteadyStateCompilesDuringTraining) {
  FusionGuard guard;
  fu::set_fusion_enabled(true);
  fu::clear_fusion_cache();

  datasets::StaticLoadOptions o;
  o.scale = 1.0;
  o.num_timestamps = 12;
  o.feature_size = 4;
  auto ds = datasets::load_chickenpox(o);
  StaticTemporalGraph graph(ds.num_nodes, ds.edges, ds.num_timestamps);
  Rng rng(77);
  nn::TGCNRegressor model(ds.signal.feature_size(), 8, rng);
  core::TrainConfig cfg;
  cfg.epochs = 1;
  cfg.sequence_length = 6;
  cfg.lr = 1e-2f;
  cfg.task = core::Task::kNodeRegression;
  core::STGraphTrainer trainer(graph, model, ds.signal, cfg);

  trainer.train_epoch();  // warmup: every (signature, shape) compiles here
  fu::reset_fusion_stats();
  trainer.train_epoch();
  const fu::FusionStats s = fu::fusion_stats();
  EXPECT_EQ(s.cache_misses, 0u) << "steady-state epoch recompiled programs";
  EXPECT_GT(s.cache_hits, 0u);
  EXPECT_GT(s.fused_forward, 0u);
  EXPECT_GT(s.fused_backward, 0u);
}

TEST(FusionCache, ValidateAuditCatchesStalePlan) {
  // STGRAPH_VALIDATE=1 audits every cache hit against the live view
  // shape; a plan whose recorded shape no longer matches must fail the
  // lookup loudly instead of silently corrupting a step.
  FusionGuard guard;
  fu::set_fusion_enabled(true);
  fu::clear_fusion_cache();
  Rng rng(41);
  Tensor a = Tensor::randn({6, 4}, rng), b = Tensor::randn({6, 4}, rng);
  (void)fu::sigmoid_add(a, b);
  ASSERT_EQ(fu::fusion_cache_size(), 1u);

  fu::debug_corrupt_cached_shapes(1, 1);
  const bool was = verify::validation_enabled();
  verify::set_validation_enabled(true);
  EXPECT_THROW((void)fu::sigmoid_add(a, b), StgError);
  verify::set_validation_enabled(was);
  fu::clear_fusion_cache();  // drop the corrupted plans

  // Unvalidated runs do not pay the audit; a fresh compile repopulates.
  (void)fu::sigmoid_add(a, b);
  EXPECT_EQ(fu::fusion_cache_size(), 1u);
}

TEST(FusionStats, BiasGradScratchComesFromArena) {
  FusionGuard guard;
  fu::set_fusion_enabled(true);
  fu::reset_fusion_stats();
  Rng rng(51);
  Tensor x = Tensor::randn({16, 8}, rng);
  Tensor bias = Tensor::randn({8}, rng, 0.5f, /*requires_grad=*/true);
  for (int i = 0; i < 3; ++i) {
    bias.zero_grad();
    Tensor y = fu::bias_sigmoid(x, bias);
    ops::sum(y).backward();
  }
  const fu::FusionStats s = fu::fusion_stats();
  EXPECT_GE(s.scratch_acquires, 3u);
  EXPECT_GE(s.scratch_reuses, 2u) << "bias-grad scratch not arena-reused";
}

// ---- end-to-end training parity ------------------------------------------

/// Train the same model twice from identical seeds — once fused, once
/// replayed — and require bit-identical losses, parameters, and final
/// gradients. This is the PR's headline contract.
template <typename MakeModel>
void training_parity(const char* name, MakeModel make_model) {
  FusionGuard guard;
  datasets::StaticLoadOptions o;
  o.scale = 1.0;
  o.num_timestamps = 16;
  o.feature_size = 4;
  auto ds = datasets::load_chickenpox(o);
  core::TrainConfig cfg;
  cfg.epochs = 3;
  cfg.sequence_length = 6;
  cfg.lr = 1e-2f;
  cfg.task = core::Task::kNodeRegression;

  auto run_mode = [&](bool fused, std::vector<double>* losses,
                      std::vector<nn::Parameter>* params) {
    fu::set_fusion_enabled(fused);
    StaticTemporalGraph graph(ds.num_nodes, ds.edges, ds.num_timestamps);
    Rng rng(977);
    auto model = make_model(ds.signal.feature_size(), rng);
    core::STGraphTrainer trainer(graph, *model, ds.signal, cfg);
    for (uint32_t e = 0; e < cfg.epochs; ++e)
      losses->push_back(trainer.train_epoch().loss);
    *params = model->parameters();
  };

  std::vector<double> loss_on, loss_off;
  std::vector<nn::Parameter> p_on, p_off;
  run_mode(true, &loss_on, &p_on);
  run_mode(false, &loss_off, &p_off);

  ASSERT_EQ(loss_on.size(), loss_off.size());
  EXPECT_EQ(std::memcmp(loss_on.data(), loss_off.data(),
                        sizeof(double) * loss_on.size()),
            0)
      << name << ": loss trajectories differ";
  ASSERT_EQ(p_on.size(), p_off.size());
  for (size_t i = 0; i < p_on.size(); ++i) {
    expect_bitwise(p_on[i].tensor, p_off[i].tensor,
                   std::string(name) + " param " + p_on[i].name);
    expect_bitwise(p_on[i].tensor.grad(), p_off[i].tensor.grad(),
                   std::string(name) + " grad " + p_on[i].name);
  }
}

TEST(TrainingParity, TgcnFusedMatchesUnfusedBitwise) {
  training_parity("tgcn", [](int64_t in, Rng& rng) {
    return std::make_unique<nn::TGCNRegressor>(in, 8, rng);
  });
}

TEST(TrainingParity, GConvGruFusedMatchesUnfusedBitwise) {
  training_parity("gconv_gru", [](int64_t in, Rng& rng) {
    return std::make_unique<nn::GConvGRURegressor>(in, 8, 2, rng);
  });
}

TEST(TrainingParity, GConvLstmFusedMatchesUnfusedBitwise) {
  training_parity("gconv_lstm", [](int64_t in, Rng& rng) {
    return std::make_unique<nn::GConvLSTMRegressor>(in, 8, 2, rng);
  });
}

}  // namespace
}  // namespace stgraph
