// Vertex-centric tracing frontend — STGraph's analogue of Seastar's
// Python-level operator tracing. The user writes a function over a
// VertexContext using symbolic values; executing it once records the
// Program IR (no feature data is touched during tracing).
//
// Example (the GCN aggregation used by the TGCN layer):
//
//   Program p = trace([](VertexContext& v) {
//     auto msg = v.gcn_norm() * v.src_feature(0);
//     return v.agg_sum(msg).with_self_loop(v.gcn_norm());
//   });
#pragma once

#include <functional>

#include "compiler/ir.hpp"

namespace stgraph::compiler {

class VertexContext;

/// Symbolic per-edge coefficient expression (product of Coefs).
class CoefExpr {
 public:
  CoefExpr() = default;
  explicit CoefExpr(std::vector<Coef> coefs) : coefs_(std::move(coefs)) {}
  const std::vector<Coef>& coefs() const { return coefs_; }
  friend CoefExpr operator*(const CoefExpr& a, const CoefExpr& b) {
    std::vector<Coef> out = a.coefs_;
    out.insert(out.end(), b.coefs_.begin(), b.coefs_.end());
    return CoefExpr(std::move(out));
  }

 private:
  std::vector<Coef> coefs_;
};

/// Symbolic message expression: a sum of coef·feature terms.
class MsgExpr {
 public:
  MsgExpr() = default;
  explicit MsgExpr(std::vector<MessageTerm> terms) : terms_(std::move(terms)) {}
  const std::vector<MessageTerm>& terms() const { return terms_; }
  friend MsgExpr operator+(const MsgExpr& a, const MsgExpr& b) {
    std::vector<MessageTerm> out = a.terms_;
    out.insert(out.end(), b.terms_.begin(), b.terms_.end());
    return MsgExpr(std::move(out));
  }
  friend MsgExpr operator*(const CoefExpr& c, const MsgExpr& m) {
    std::vector<MessageTerm> out = m.terms_;
    for (MessageTerm& t : out)
      t.coefs.insert(t.coefs.end(), c.coefs().begin(), c.coefs().end());
    return MsgExpr(std::move(out));
  }

 private:
  std::vector<MessageTerm> terms_;
};

/// Builder for the aggregation result; allows chaining a self-loop term
/// and an output scale before the trace finishes.
class AggExpr {
 public:
  AggExpr(AggKind kind, MsgExpr msg) : kind_(kind), msg_(std::move(msg)) {}
  AggExpr& with_self_loop(const CoefExpr& coef, int input = 0);
  AggExpr& scaled(float s);

  AggKind kind() const { return kind_; }
  const MsgExpr& msg() const { return msg_; }
  bool has_self() const { return has_self_; }
  const CoefExpr& self_coef() const { return self_coef_; }
  int self_input() const { return self_input_; }
  float scale() const { return scale_; }

 private:
  AggKind kind_;
  MsgExpr msg_;
  bool has_self_ = false;
  CoefExpr self_coef_;
  int self_input_ = 0;
  float scale_ = 1.0f;
};

/// The symbolic vertex handed to the traced function.
class VertexContext {
 public:
  /// Feature vector of the message-producing neighbor, input slot `i`.
  MsgExpr src_feature(int i = 0) const;
  /// Symmetric GCN normalization 1/sqrt((din(u)+1)(din(v)+1)).
  CoefExpr gcn_norm() const;
  /// 1 / din(v) — plain mean over in-neighbors.
  CoefExpr inv_degree() const;
  /// 1 / (din(v)+1) — mean including the self loop.
  CoefExpr inv_degree_p1() const;
  /// Per-edge weight w[eid].
  CoefExpr edge_weight() const;
  CoefExpr constant(float c) const;

  AggExpr agg_sum(const MsgExpr& msg) const { return AggExpr(AggKind::kSum, msg); }
  AggExpr agg_mean(const MsgExpr& msg) const { return AggExpr(AggKind::kMean, msg); }
  /// Element-wise max over neighbor messages (GraphSAGE-maxpool style).
  /// Restricted to a single message term; the forward kernel records
  /// argmax indices that the backward pass routes gradients along.
  AggExpr agg_max(const MsgExpr& msg) const { return AggExpr(AggKind::kMax, msg); }
};

/// Trace a vertex-centric function into Program IR.
Program trace(const std::function<AggExpr(VertexContext&)>& fn);

// ---------------------------------------------------------------------------
// Elementwise-region tracing — the tape half of the fusing compiler.
//
// A cell describes its elementwise chain once, against symbolic values;
// executing the builder records an EwProgram in creation order:
//
//   EwProgram p = trace_elementwise([](EwTracer& t) {
//     return t.sigmoid(t.add(t.in(), t.in()));   // σ(a + b)
//   });
// ---------------------------------------------------------------------------

class EwTracer;

/// Symbolic value during elementwise tracing (a node id in the program
/// being built).
class EwExpr {
 public:
  EwExpr() = default;
  int id() const { return id_; }

 private:
  friend class EwTracer;
  EwExpr(EwTracer* t, int id) : tracer_(t), id_(id) {}
  EwTracer* tracer_ = nullptr;
  int id_ = -1;
};

/// Records the EwProgram as the traced function executes.
class EwTracer {
 public:
  /// Declare the next [N, F] input slot.
  EwExpr in();
  /// Declare the next [F] bias input slot (broadcast over rows).
  EwExpr in_bias();

  EwExpr add(EwExpr a, EwExpr b);
  EwExpr sub(EwExpr a, EwExpr b);
  EwExpr mul(EwExpr a, EwExpr b);
  EwExpr div(EwExpr a, EwExpr b);
  EwExpr add_scalar(EwExpr a, float s);
  EwExpr mul_scalar(EwExpr a, float s);
  EwExpr one_minus(EwExpr a);
  EwExpr sigmoid(EwExpr a);
  EwExpr tanh(EwExpr a);
  EwExpr relu(EwExpr a);
  EwExpr leaky_relu(EwExpr a, float slope = 0.01f);
  EwExpr exp(EwExpr a);
  /// x [N,F] + bias [F]; `bias` must come from in_bias().
  EwExpr add_bias(EwExpr x, EwExpr bias);

 private:
  friend EwProgram trace_elementwise(
      const std::function<EwExpr(EwTracer&)>& fn);
  EwExpr emit(EwOp op, int a, int b, float imm);
  EwProgram prog_;
};

/// Trace an elementwise builder into EwProgram IR (unoptimized; callers
/// run optimize_elementwise() from passes.hpp before compiling).
EwProgram trace_elementwise(const std::function<EwExpr(EwTracer&)>& fn);

}  // namespace stgraph::compiler
