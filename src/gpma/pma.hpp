// Packed Memory Array — the storage engine behind GPMAGraph (paper §V-D,
// after Sha et al., "Accelerating Dynamic Graph Analytics on GPUs",
// VLDB'17).
//
// Keys are 64-bit edge keys (src << 32 | dst) kept sorted in an array with
// deliberate gaps ("SPACE" slots). The array is divided into leaf segments
// of Θ(log capacity) slots; a segment tree of density thresholds governs
// when a batch of insertions/deletions triggers a window rebalance
// (redistribute the window's live keys evenly) or a capacity change.
// Batches are routed to leaves with a prefix-max fence array, mirroring the
// GPU algorithm's per-leaf partitioning step.
//
// The PMA stores only keys; GPMAGraph layers edge labels, degree arrays and
// CSR views on top (they are rebuilt by a single O(capacity) pass after
// each batch, which is also where the paper's edge relabelling happens).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/device_buffer.hpp"

namespace stgraph {

class Pma {
 public:
  static constexpr uint64_t kEmptyKey = ~0ULL;

  Pma();
  Pma(Pma&&) = default;
  Pma& operator=(Pma&&) = default;
  Pma(const Pma&) = delete;
  Pma& operator=(const Pma&) = delete;
  /// Deep copy, including slack structure (used by the Algorithm-2 cache).
  Pma clone() const;

  /// Number of live keys.
  std::size_t size() const { return size_; }
  std::size_t capacity() const { return slots_.size(); }
  std::size_t segment_size() const { return seg_size_; }
  /// Device bytes held by the slot array.
  std::size_t device_bytes() const { return slots_.bytes(); }

  /// Insert a batch of keys (unsorted ok; duplicates of existing keys are
  /// ignored). Returns the number of keys actually inserted.
  std::size_t insert_batch(std::vector<uint64_t> keys);

  /// Delete a batch of keys (absent keys ignored). Returns the number of
  /// keys actually removed.
  std::size_t erase_batch(std::vector<uint64_t> keys);

  bool contains(uint64_t key) const;

  /// Index of the first slot whose live key is >= `key`; capacity() if all
  /// live keys are smaller. Suitable for building row offsets over the
  /// gapped array.
  std::size_t lower_bound_slot(uint64_t key) const;

  /// Raw gapped slot array (kEmptyKey marks SPACE).
  const DeviceBuffer<uint64_t>& slots() const { return slots_; }

  /// Live keys in sorted order (O(capacity); tests and global rebuilds).
  std::vector<uint64_t> extract_sorted() const;

  /// Validate all structural invariants; on failure returns false and
  /// explains in `why`. Checked invariants: live keys sorted and unique
  /// across the array, size() matches the live count, per-window densities
  /// within bounds (after the slack applied at construction).
  bool check_invariants(std::string* why = nullptr) const;

  /// Statistics for benches.
  uint64_t rebalance_count() const { return rebalances_; }
  uint64_t resize_count() const { return resizes_; }

 private:
  std::size_t num_leaves() const { return capacity() / seg_size_; }
  std::size_t tree_height() const;
  double upper_density(std::size_t height) const;
  double lower_density(std::size_t height) const;

  /// Leaf index a key routes to (via the prefix-max fences).
  std::size_t route_leaf(uint64_t key) const;

  /// Redistribute `keys` evenly across slots [begin, end).
  void redistribute(const std::vector<uint64_t>& keys, std::size_t begin,
                    std::size_t end);

  /// Collect live keys in slots [begin, end), sorted.
  std::vector<uint64_t> collect(std::size_t begin, std::size_t end) const;

  /// Rebuild fences + per-leaf live counts (full pass).
  void rebuild_metadata();
  /// Incremental metadata refresh for a window of leaves, with rightward
  /// fence propagation. Fences may be left stale-high after deletions,
  /// which is safe: routing then lands at or before the true leaf and the
  /// forward scan recovers.
  void refresh_metadata(std::size_t first_leaf, std::size_t leaf_span);

  /// Grow/shrink to `new_capacity` and redistribute `keys` globally.
  void rebuild_with_capacity(std::vector<uint64_t> keys,
                             std::size_t new_capacity);

  static std::size_t segment_size_for(std::size_t capacity);

  DeviceBuffer<uint64_t> slots_;
  std::size_t size_ = 0;
  std::size_t seg_size_ = 8;
  std::vector<uint32_t> leaf_count_;   // live keys per leaf
  std::vector<uint64_t> leaf_fence_;   // prefix max of live keys per leaf
  uint64_t rebalances_ = 0;
  uint64_t resizes_ = 0;
};

/// Pack/unpack edge keys.
inline uint64_t make_edge_key(uint32_t src, uint32_t dst) {
  return (static_cast<uint64_t>(src) << 32) | dst;
}
inline uint32_t edge_key_src(uint64_t key) {
  return static_cast<uint32_t>(key >> 32);
}
inline uint32_t edge_key_dst(uint64_t key) {
  return static_cast<uint32_t>(key & 0xFFFFFFFFu);
}

}  // namespace stgraph
