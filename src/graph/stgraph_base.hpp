// STGraphBase — the paper's Figure 4 graph abstraction. It unifies how the
// temporally-aware executor obtains, for any timestamp, the adjacency
// views the generated kernels need:
//   * forward pass  → in-neighbor view (reverse CSR) + in-degree-sorted
//     processing order,
//   * backward pass → out-neighbor view (CSR) + out-degree-sorted order,
//   * shared edge labels between the two views,
//   * graph property accessors (node/edge counts, degree arrays).
//
// Subclasses decide the storage format: one static snapshot
// (StaticTemporalGraph), fully materialized per-timestamp snapshots
// (NaiveGraph), or a GPMA base graph + deltas with on-demand snapshot
// construction (GPMAGraph).
#pragma once

#include <cstdint>
#include <string>

#include "graph/csr.hpp"

namespace stgraph {

/// Adjacency views + degree arrays for one timestamp, handed to kernels.
struct SnapshotView {
  /// Forward pass: rows are destinations, neighbors are in-neighbors.
  CsrView in_view;
  /// Backward pass: rows are sources, neighbors are out-neighbors.
  CsrView out_view;
  const uint32_t* in_degrees = nullptr;
  const uint32_t* out_degrees = nullptr;
  uint32_t num_nodes = 0;
  uint32_t num_edges = 0;
};

class STGraphBase {
 public:
  virtual ~STGraphBase() = default;

  virtual uint32_t num_nodes() const = 0;
  /// Edge count of the snapshot at timestamp t.
  virtual uint32_t num_edges_at(uint32_t t) const = 0;
  /// Number of timestamps this graph object covers.
  virtual uint32_t num_timestamps() const = 0;
  /// True for DTDGs (NaiveGraph, GPMAGraph), false for static-temporal.
  virtual bool is_dynamic() const = 0;
  virtual std::string format_name() const = 0;

  /// Algorithm 2 analogue: position the graph object at timestamp t for a
  /// forward pass and return the kernel views. For GPMAGraph this applies
  /// edge updates from the cached position to t; for the other formats it
  /// is an index lookup. The returned view is valid until the next
  /// get_* call on this object.
  virtual SnapshotView get_graph(uint32_t t) = 0;

  /// Get-Backward-Graph analogue: position at timestamp t for a backward
  /// pass (GPMA applies reverse updates and rebuilds the reverse view).
  virtual SnapshotView get_backward_graph(uint32_t t) = 0;

  /// Device bytes currently held by this graph object (for the memory
  /// experiments).
  virtual std::size_t device_bytes() const = 0;
};

}  // namespace stgraph
