// Portable Clang Thread Safety Analysis macros (the standard header from
// the Clang documentation, trimmed to what STGraph uses). Under Clang the
// macros expand to the static-analysis attributes so
// `-Wthread-safety -Werror` proves lock discipline at compile time
// (`run_all.sh lint` / the CI lint job); under GCC and MSVC they expand to
// nothing and the annotated code compiles unchanged.
//
// The analysis only tracks locks acquired through annotated types, and
// libstdc++'s std::mutex/std::lock_guard carry no annotations — which is
// why the concurrency layer locks through stgraph::Mutex / MutexLock
// (src/runtime/mutex.hpp) instead of the std types directly.
#pragma once

#if defined(__clang__) && (!defined(SWIG))
#define STG_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define STG_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op
#endif

#define STG_CAPABILITY(x) STG_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

#define STG_SCOPED_CAPABILITY STG_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

#define STG_GUARDED_BY(x) STG_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

#define STG_PT_GUARDED_BY(x) STG_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

#define STG_ACQUIRED_BEFORE(...) \
  STG_THREAD_ANNOTATION_ATTRIBUTE(acquired_before(__VA_ARGS__))

#define STG_ACQUIRED_AFTER(...) \
  STG_THREAD_ANNOTATION_ATTRIBUTE(acquired_after(__VA_ARGS__))

#define STG_REQUIRES(...) \
  STG_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))

#define STG_REQUIRES_SHARED(...) \
  STG_THREAD_ANNOTATION_ATTRIBUTE(requires_shared_capability(__VA_ARGS__))

#define STG_ACQUIRE(...) \
  STG_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))

#define STG_ACQUIRE_SHARED(...) \
  STG_THREAD_ANNOTATION_ATTRIBUTE(acquire_shared_capability(__VA_ARGS__))

#define STG_RELEASE(...) \
  STG_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))

#define STG_TRY_ACQUIRE(...) \
  STG_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))

#define STG_EXCLUDES(...) \
  STG_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

#define STG_ASSERT_CAPABILITY(x) \
  STG_THREAD_ANNOTATION_ATTRIBUTE(assert_capability(x))

#define STG_RETURN_CAPABILITY(x) STG_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

#define STG_NO_THREAD_SAFETY_ANALYSIS \
  STG_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)
