// Table III: maximum and average improvement of the STGraph variants over
// PyG-T, aggregated over the same sweeps the figures run (feature sizes
// for time; sequence lengths / %-changes for memory). Expected shape:
// Naive the best DTDG speedup, GPMA the best DTDG memory; static STGraph
// ahead of PyG-T on both axes.
#include <algorithm>
#include <iostream>
#include <vector>

#include "common.hpp"

using namespace stgraph;
using namespace stgraph::bench;

namespace {
struct Agg {
  std::vector<double> ratios;
  void add(double r) { ratios.push_back(r); }
  double max() const {
    return ratios.empty() ? 0 : *std::max_element(ratios.begin(), ratios.end());
  }
  double avg() const {
    double s = 0;
    for (double r : ratios) s += r;
    return ratios.empty() ? 0 : s / ratios.size();
  }
};
}  // namespace

int main(int argc, char** argv) {
  BenchOptions opts = parse_options(argc, argv);

  Agg static_time, static_mem, naive_time, naive_mem, gpma_time, gpma_mem;
  // Fusing-compiler evidence, summed over every STGraph run in the time
  // sweeps: unfused tape launches vs fused-region launches and the
  // intermediate bytes each side materialized per epoch.
  uint64_t tape_ops = 0, fused_ops = 0;
  double tape_mib = 0.0, fused_mib = 0.0;
  auto add_profile = [&](const RunResult& r) {
    tape_ops += r.tape_op_count;
    fused_ops += r.fused_op_count;
    tape_mib += r.tape_bytes / (1024.0 * 1024.0);
    fused_mib += r.fused_bytes / (1024.0 * 1024.0);
  };

  // ---- static-temporal sweep (time over feature sizes, memory too) -----
  datasets::StaticLoadOptions so;
  so.scale = opts.scale_static;
  so.num_timestamps = opts.timestamps;
  for (const auto& ds : datasets::load_all_static(so)) {
    for (int64_t F : feature_sweep(opts)) {
      const auto signal = datasets::make_static_signal(ds, F, 1234);
      const RunResult st = run_static(ds, signal, System::kStgraphStatic, opts);
      const RunResult pt = run_static(ds, signal, System::kPygt, opts);
      static_time.add(pt.per_epoch_seconds /
                      std::max(st.per_epoch_seconds, 1e-9));
      static_mem.add(pt.peak_device_mib / std::max(st.peak_device_mib, 1e-9));
      add_profile(st);
      std::cout << "." << std::flush;
    }
  }

  // ---- DTDG sweep (time over feature sizes at 5%, memory over %-change) --
  datasets::DynamicLoadOptions dyo;
  dyo.scale = opts.scale_dynamic;
  for (const auto& ds : datasets::load_all_dynamic(dyo)) {
    const DtdgEvents ev5 = datasets::make_dtdg(ds, 5.0);
    for (int64_t F : feature_sweep(opts)) {
      dyo.feature_size = F;
      const auto signal = datasets::make_dynamic_signal(ev5, dyo);
      const RunResult naive = run_dtdg(ev5, signal, System::kStgraphNaive, opts);
      const RunResult gpma = run_dtdg(ev5, signal, System::kStgraphGpma, opts);
      const RunResult pygt = run_dtdg(ev5, signal, System::kPygt, opts);
      naive_time.add(pygt.per_epoch_seconds /
                     std::max(naive.per_epoch_seconds, 1e-9));
      gpma_time.add(pygt.per_epoch_seconds /
                    std::max(gpma.per_epoch_seconds, 1e-9));
      add_profile(naive);
      add_profile(gpma);
      std::cout << "." << std::flush;
    }
    dyo.feature_size = 8;
    for (double pct : {2.5, 5.0, 10.0}) {
      const DtdgEvents ev = datasets::make_dtdg(ds, pct);
      const auto signal = datasets::make_dynamic_signal(ev, dyo);
      BenchOptions mem_opts = opts;
      mem_opts.epochs = 1;
      const RunResult naive =
          run_dtdg(ev, signal, System::kStgraphNaive, mem_opts);
      const RunResult gpma =
          run_dtdg(ev, signal, System::kStgraphGpma, mem_opts);
      const RunResult pygt = run_dtdg(ev, signal, System::kPygt, mem_opts);
      naive_mem.add(pygt.peak_device_mib /
                    std::max(naive.peak_device_mib, 1e-9));
      gpma_mem.add(pygt.peak_device_mib / std::max(gpma.peak_device_mib, 1e-9));
      std::cout << "." << std::flush;
    }
  }
  std::cout << "\n";

  CsvWriter csv({"Metric", "Static", "Naive", "GPMA", "Paper_Static",
                 "Paper_Naive", "Paper_GPMA"});
  csv.add_row({"Time per epoch (max)", CsvWriter::fmt(static_time.max(), 2),
               CsvWriter::fmt(naive_time.max(), 2),
               CsvWriter::fmt(gpma_time.max(), 2), "1.69", "1.65", "1.20"});
  csv.add_row({"Time per epoch (avg)", CsvWriter::fmt(static_time.avg(), 2),
               CsvWriter::fmt(naive_time.avg(), 2),
               CsvWriter::fmt(gpma_time.avg(), 2), "1.28", "1.22", "0.86"});
  csv.add_row({"Memory consumed (max)", CsvWriter::fmt(static_mem.max(), 2),
               CsvWriter::fmt(naive_mem.max(), 2),
               CsvWriter::fmt(gpma_mem.max(), 2), "2.14", "1.10", "1.91"});
  csv.add_row({"Memory consumed (avg)", CsvWriter::fmt(static_mem.avg(), 2),
               CsvWriter::fmt(naive_mem.avg(), 2),
               CsvWriter::fmt(gpma_mem.avg(), 2), "1.30", "0.98", "1.23"});
  emit("table3_improvements", csv, opts);

  // Tape-vs-fused launch profile over the same sweeps (per-epoch counters
  // summed across all STGraph runs). With STGRAPH_FUSION=off the fused
  // rows go to zero and the tape rows absorb the regions.
  CsvWriter pcsv({"Counter", "Tape", "Fused"});
  pcsv.add_row({"Elementwise launches / epoch", std::to_string(tape_ops),
                std::to_string(fused_ops)});
  pcsv.add_row({"Intermediates MiB / epoch", CsvWriter::fmt(tape_mib, 2),
                CsvWriter::fmt(fused_mib, 2)});
  emit("table3_op_profile", pcsv, opts);
  return 0;
}
