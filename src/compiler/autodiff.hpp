// IR-level automatic differentiation (Seastar derives the backward CUDA
// kernel from the forward IR; we derive a backward Program).
//
// Every traced program is linear in its feature inputs (coefficients only
// read degrees / edge weights / constants), so:
//
//   forward:  out[v] = Σ_{u→v} c(u,v)·x[u] + s(v)·x[v]
//   backward: gx[u]  = Σ_{v: u→v} c(u,v)·g[v] + s(u)·g[u]
//
// i.e. the backward pass runs the SAME aggregation over the transposed
// adjacency (the paper's out-neighbor CSR), gathering the output gradient
// instead of features. Crucially the backward program never reads the
// forward input features — backward_needs() reports this, and the
// executor's State Stack uses it to avoid storing feature tensors that the
// backward pass will not touch (the paper's State-Stack memory
// optimization).
#pragma once

#include <vector>

#include "compiler/ir.hpp"

namespace stgraph::compiler {

/// What the backward kernel of a program requires at backward time.
struct BackwardNeeds {
  bool input_features = false;  // x from the forward pass
  bool output_values = false;   // out from the forward pass
  bool graph = true;            // the snapshot (always, via the Graph Stack)
  /// Max aggregation only: the argmax indices recorded during forward.
  /// The executor's State Stack is what carries them to the backward pass.
  bool argmax = false;
};

/// Derive the backward program of `p` with respect to feature input
/// `input`. The returned program gathers the OUTPUT GRADIENT (its terms
/// reference input slot 0 = grad_out) and must be executed with the
/// producer/consumer roles swapped (KernelArgs::producer_is_col = false)
/// over the transposed adjacency views.
Program differentiate(const Program& p, int input = 0);

/// Static analysis of what `p`'s backward pass needs saved.
BackwardNeeds backward_needs(const Program& p);

}  // namespace stgraph::compiler
