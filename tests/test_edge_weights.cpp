// Functional edge-weight tests: per-edge data indexed by the shared edge
// labels must resolve to the same weight in the forward (reverse-CSR) and
// backward (gapped PMA) views, across timestamps and relabelings — the
// reason the paper's abstraction requires label sharing at all. Also
// covers GCNStack.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>

#include "core/executor.hpp"
#include "gpma/gpma_graph.hpp"
#include "graph/naive_graph.hpp"
#include "graph/static_graph.hpp"
#include "nn/gcn_stack.hpp"
#include "nn/optim.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"

namespace stgraph {
namespace {

using WeightMap = std::map<std::pair<uint32_t, uint32_t>, float>;

// Build the per-eid weight array for a snapshot view from a semantic
// (src, dst) → weight map, reading labels off the backward (out) view.
std::vector<float> weights_for_view(const SnapshotView& v,
                                    const WeightMap& wm) {
  std::vector<float> w(v.num_edges, -1.0f);
  for (uint32_t r = 0; r < v.num_nodes; ++r) {
    for (uint32_t j = v.out_view.row_offset[r];
         j < v.out_view.row_offset[r + 1]; ++j) {
      const uint32_t c = v.out_view.col_indices[j];
      if (v.out_view.has_gaps && c == kSpace) continue;
      const uint32_t eid = v.out_view.eids[j];
      auto it = wm.find({r, c});
      EXPECT_NE(it, wm.end()) << "edge (" << r << "," << c << ")";
      if (it != wm.end()) w[eid] = it->second;
    }
  }
  for (float x : w) EXPECT_GE(x, 0.0f) << "unassigned edge label";
  return w;
}

// Dense weighted-GCN reference.
std::vector<float> dense_reference(uint32_t n, const EdgeList& edges,
                                   const WeightMap& wm,
                                   const std::vector<float>& x, int64_t F) {
  std::vector<uint32_t> din(n, 0);
  for (const auto& [u, v] : edges) ++din[v];
  std::vector<float> out(n * F, 0.0f);
  for (const auto& [u, v] : edges) {
    const float c = wm.at({u, v}) /
                    std::sqrt(float(din[u] + 1) * float(din[v] + 1));
    for (int64_t f = 0; f < F; ++f) out[v * F + f] += c * x[u * F + f];
  }
  for (uint32_t v = 0; v < n; ++v)
    for (int64_t f = 0; f < F; ++f)
      out[v * F + f] += x[v * F + f] / float(din[v] + 1);
  return out;
}

TEST(EdgeWeights, GpmaRelabelledIdsResolveConsistentlyAcrossTimestamps) {
  Rng rng(3);
  EdgeList stream;
  for (int i = 0; i < 900; ++i) {
    uint32_t s = static_cast<uint32_t>(rng.next_below(25));
    uint32_t d = static_cast<uint32_t>(rng.next_below(25));
    if (s == d) d = (d + 1) % 25;
    stream.emplace_back(s, d);
  }
  DtdgEvents ev = window_edge_stream(25, stream, 10.0);
  GpmaGraph gpma(ev);
  const int64_t F = 3;

  // Semantic weights for every edge that ever exists.
  WeightMap wm;
  for (uint32_t t = 0; t < ev.num_timestamps(); ++t)
    for (const auto& e : ev.snapshot_edges(t))
      if (!wm.count(e)) wm[e] = rng.uniform(0.5f, 1.5f);

  nn::SeastarGCNConv probe(F, F, rng);  // compiled weighted kernels
  std::vector<float> x(25 * F);
  for (auto& v : x) v = rng.normal();

  for (uint32_t t = 0; t < ev.num_timestamps(); t += 3) {
    SnapshotView view = gpma.get_graph(t);
    const std::vector<float> w = weights_for_view(view, wm);
    // Run the forward kernel with per-eid weights bound; labels produced
    // by relabelling at THIS timestamp must address the same semantic
    // weights in the in view (reverse CSR) the kernel consumes.
    std::vector<float> out(25 * F);
    compiler::KernelArgs args;
    args.view = view.in_view;
    args.in_degrees = view.in_degrees;
    const float* inputs[1] = {x.data()};
    args.inputs = inputs;
    args.self_features = x.data();
    args.edge_weights = w.data();
    args.out = out.data();
    args.num_feats = F;
    args.producer_is_col = true;
    compiler::run_kernel(probe.forward_kernel(), args);

    const auto want = dense_reference(25, ev.snapshot_edges(t), wm, x, F);
    for (std::size_t i = 0; i < out.size(); ++i)
      ASSERT_NEAR(out[i], want[i], 1e-4f) << "t=" << t << " entry " << i;
  }
}

TEST(EdgeWeights, NaiveAndGpmaWeightedOutputsAgree) {
  Rng rng(7);
  EdgeList stream;
  for (int i = 0; i < 700; ++i) {
    uint32_t s = static_cast<uint32_t>(rng.next_below(20));
    uint32_t d = static_cast<uint32_t>(rng.next_below(20));
    if (s == d) d = (d + 1) % 20;
    stream.emplace_back(s, d);
  }
  DtdgEvents ev = window_edge_stream(20, stream, 10.0);
  NaiveGraph naive(ev);
  GpmaGraph gpma(ev);
  WeightMap wm;
  for (uint32_t t = 0; t < ev.num_timestamps(); ++t)
    for (const auto& e : ev.snapshot_edges(t))
      if (!wm.count(e)) wm[e] = rng.uniform(0.5f, 1.5f);

  const int64_t F = 2;
  Rng wa(11), wb(11);
  nn::SeastarGCNConv conv_a(F, F, wa), conv_b(F, F, wb);
  core::TemporalExecutor ea(naive), eb(gpma);
  NoGradGuard ng;
  Tensor x = Tensor::randn({20, F}, rng);

  for (uint32_t t = 0; t < ev.num_timestamps(); t += 2) {
    ea.begin_forward_step(t);
    eb.begin_forward_step(t);
    const std::vector<float> w_naive =
        weights_for_view(naive.get_graph(t), wm);
    const std::vector<float> w_gpma = weights_for_view(gpma.get_graph(t), wm);
    Tensor ya = conv_a.forward(ea, x, w_naive.data());
    Tensor yb = conv_b.forward(eb, x, w_gpma.data());
    for (int64_t i = 0; i < ya.numel(); ++i)
      ASSERT_NEAR(ya.at(i), yb.at(i), 1e-4f) << "t=" << t;
  }
}

TEST(GcnStack, DepthAndShapes) {
  Rng rng(13);
  nn::GCNStack stack({4, 8, 8, 2}, rng, /*dropout=*/0.0f);
  EXPECT_EQ(stack.depth(), 3u);
  StaticTemporalGraph graph(10, {{0, 1}, {1, 2}, {2, 3}}, 1);
  core::TemporalExecutor exec(graph);
  exec.begin_forward_step(0);
  NoGradGuard ng;
  Tensor y = stack.forward(exec, Tensor::randn({10, 4}, rng));
  EXPECT_EQ(y.shape(), (Shape{10, 2}));
  EXPECT_THROW(nn::GCNStack({4}, rng), StgError);
}

TEST(GcnStack, TrainsEndToEnd) {
  Rng rng(17);
  const uint32_t n = 12;
  EdgeList edges;
  std::set<std::pair<uint32_t, uint32_t>> dedup;
  for (int i = 0; i < 50; ++i) {
    uint32_t s = rng.next_below(n), d = rng.next_below(n);
    if (s == d || !dedup.insert({s, d}).second) continue;
    edges.emplace_back(s, d);
  }
  StaticTemporalGraph graph(n, edges, 1);
  core::TemporalExecutor exec(graph);
  nn::GCNStack stack({3, 6, 1}, rng, /*dropout=*/0.1f);
  Tensor x = Tensor::randn({n, 3}, rng);
  Tensor target = Tensor::randn({n, 1}, rng, 0.3f);
  nn::Adam opt(stack.parameters(), 0.02f);
  double first = 0, last = 0;
  for (int step = 0; step < 40; ++step) {
    exec.begin_forward_step(0);
    Tensor loss = ops::mse_loss(stack.forward(exec, x), target);
    opt.zero_grad();
    loss.backward();
    opt.step();
    exec.verify_drained();
    if (step == 0) first = loss.item();
    last = loss.item();
  }
  EXPECT_LT(last, first * 0.7);
}

TEST(GcnStack, DropoutOnlyInTrainingMode) {
  Rng rng(19);
  nn::GCNStack stack({3, 16, 3}, rng, /*dropout=*/0.6f);
  StaticTemporalGraph graph(8, {{0, 1}, {1, 2}, {3, 4}}, 1);
  core::TemporalExecutor exec(graph);
  NoGradGuard ng;
  Tensor x = Tensor::randn({8, 3}, rng);
  stack.eval();
  exec.begin_forward_step(0);
  Tensor a = stack.forward(exec, x);
  exec.begin_forward_step(0);
  Tensor b = stack.forward(exec, x);
  EXPECT_EQ(a.to_vector(), b.to_vector());  // eval is deterministic
  stack.train();
  exec.begin_forward_step(0);
  Tensor c = stack.forward(exec, x);
  exec.begin_forward_step(0);
  Tensor d = stack.forward(exec, x);
  bool differs = false;
  for (int64_t i = 0; i < c.numel(); ++i)
    differs = differs || c.at(i) != d.at(i);
  EXPECT_TRUE(differs);  // dropout masks differ between calls
}

}  // namespace
}  // namespace stgraph
