#include "nn/schedule.hpp"

#include "util/check.hpp"

namespace stgraph::nn {

StepLR::StepLR(Optimizer& optimizer, uint32_t step_size, float gamma)
    : optimizer_(optimizer), step_size_(step_size), gamma_(gamma),
      lr_(optimizer.learning_rate()) {
  STG_CHECK(step_size_ >= 1, "step_size must be positive");
  STG_CHECK(gamma_ > 0.0f, "gamma must be positive");
}

void StepLR::step() {
  ++epoch_;
  if (epoch_ % step_size_ == 0) {
    lr_ *= gamma_;
    optimizer_.set_learning_rate(lr_);
  }
}

EarlyStopping::EarlyStopping(uint32_t patience, double min_delta)
    : patience_(patience), min_delta_(min_delta) {
  STG_CHECK(patience_ >= 1, "patience must be positive");
}

bool EarlyStopping::update(double loss) {
  if (loss < best_ - min_delta_) {
    best_ = loss;
    stale_ = 0;
  } else {
    ++stale_;
    if (stale_ >= patience_) stopped_ = true;
  }
  return stopped_;
}

}  // namespace stgraph::nn
