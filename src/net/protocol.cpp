#include "net/protocol.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <type_traits>

#include "util/crc32.hpp"

namespace stgraph::net {

namespace {

// Little-endian scalar serialization. x86/aarch64 are both LE; memcpy keeps
// it alignment-safe either way.
template <typename T>
void put(std::vector<uint8_t>& out, T v) {
  static_assert(std::is_trivially_copyable<T>::value, "wire scalar");
  const std::size_t at = out.size();
  out.resize(at + sizeof(T));
  std::memcpy(out.data() + at, &v, sizeof(T));
}

/// Bounds-checked reader over a payload; any overrun is a kBadRequest.
class Reader {
 public:
  Reader(const std::vector<uint8_t>& p) : p_(p) {}

  template <typename T>
  T get() {
    static_assert(std::is_trivially_copyable<T>::value, "wire scalar");
    if (off_ + sizeof(T) > p_.size())
      throw NetError(ErrorCode::kBadRequest,
                     "net: truncated payload (need " +
                         std::to_string(sizeof(T)) + " bytes at offset " +
                         std::to_string(off_) + " of " +
                         std::to_string(p_.size()) + ")");
    T v;
    std::memcpy(&v, p_.data() + off_, sizeof(T));
    off_ += sizeof(T);
    return v;
  }

  void get_raw(void* dst, std::size_t n) {
    if (off_ + n > p_.size())
      throw NetError(ErrorCode::kBadRequest,
                     "net: truncated payload (need " + std::to_string(n) +
                         " raw bytes at offset " + std::to_string(off_) + ")");
    std::memcpy(dst, p_.data() + off_, n);
    off_ += n;
  }

  std::size_t remaining() const { return p_.size() - off_; }

  void expect_done(const char* what) const {
    if (off_ != p_.size())
      throw NetError(ErrorCode::kBadRequest,
                     std::string("net: ") + what + " payload has " +
                         std::to_string(p_.size() - off_) +
                         " trailing bytes");
  }

 private:
  const std::vector<uint8_t>& p_;
  std::size_t off_ = 0;
};

void put_tensor(std::vector<uint8_t>& out, const Tensor& t) {
  put<uint32_t>(out, static_cast<uint32_t>(t.rows()));
  put<uint32_t>(out, static_cast<uint32_t>(t.cols()));
  const std::size_t bytes =
      static_cast<std::size_t>(t.rows()) * static_cast<std::size_t>(t.cols()) *
      sizeof(float);
  const std::size_t at = out.size();
  out.resize(at + bytes);
  std::memcpy(out.data() + at, t.data(), bytes);
}

Tensor get_tensor(Reader& r, const char* what) {
  const uint32_t rows = r.get<uint32_t>();
  const uint32_t cols = r.get<uint32_t>();
  const std::size_t count = static_cast<std::size_t>(rows) * cols;
  // Payloads are capped at kMaxPayload, so an element count past that can
  // never be backed by real bytes; checking it via division also keeps
  // count * sizeof(float) from wrapping 2^64 (rows = cols = 2^31 would
  // otherwise pass the bounds check and attempt a 2^62-element alloc).
  if (count > kMaxPayload / sizeof(float) ||
      count * sizeof(float) > r.remaining())
    throw NetError(ErrorCode::kBadRequest,
                   std::string("net: ") + what + " claims a " +
                       std::to_string(rows) + "x" + std::to_string(cols) +
                       " matrix but only " + std::to_string(r.remaining()) +
                       " bytes follow");
  Tensor t = Tensor::zeros({static_cast<int64_t>(rows),
                            static_cast<int64_t>(cols)});
  r.get_raw(t.data(), count * sizeof(float));
  return t;
}

}  // namespace

const char* to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::kQueueFull: return "queue_full";
    case ErrorCode::kDeadlineExpired: return "deadline_expired";
    case ErrorCode::kDraining: return "draining";
    case ErrorCode::kCircuitOpen: return "circuit_open";
    case ErrorCode::kBadRequest: return "bad_request";
    case ErrorCode::kInternal: return "internal";
  }
  return "unknown";
}

std::vector<uint8_t> encode_frame(const Frame& f) {
  STG_CHECK(f.payload.size() <= kMaxPayload, "net: frame payload of ",
            f.payload.size(), " bytes exceeds the ", kMaxPayload,
            "-byte protocol limit");
  std::vector<uint8_t> out;
  out.reserve(kHeaderSize + f.payload.size() + kTrailerSize);
  put<uint32_t>(out, kMagic);
  put<uint32_t>(out, static_cast<uint32_t>(f.payload.size()));
  put<uint8_t>(out, static_cast<uint8_t>(f.verb));
  put<uint8_t>(out, f.flags);
  put<uint16_t>(out, f.tenant);
  put<uint64_t>(out, f.request_id);
  out.insert(out.end(), f.payload.begin(), f.payload.end());
  // CRC over verb..payload — everything the length prefix frames.
  const uint32_t crc = crc32(out.data() + 8, out.size() - 8);
  put<uint32_t>(out, crc);
  return out;
}

void FrameDecoder::feed(const void* data, std::size_t n) {
  const auto* p = static_cast<const uint8_t*>(data);
  buf_.insert(buf_.end(), p, p + n);
}

void FrameDecoder::compact() {
  // Drop consumed prefix once it dominates the buffer, keeping feed()
  // amortized O(1) without re-shifting on every message.
  if (consumed_ > 4096 && consumed_ * 2 > buf_.size()) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<long>(consumed_));
    consumed_ = 0;
  }
}

FrameDecoder::Status FrameDecoder::next(Frame* frame, std::string* json_line) {
  if (broken_) return Status::kProtocolError;
  const uint8_t* p = buf_.data() + consumed_;
  const std::size_t avail = buf_.size() - consumed_;
  if (avail == 0) return Status::kNeedMore;

  // JSON fallback: at a message boundary, '{' cannot begin a binary frame
  // (the magic starts with 'S'), so it unambiguously selects line mode.
  if (*p == '{') {
    const uint8_t* nl = static_cast<const uint8_t*>(memchr(p, '\n', avail));
    if (nl == nullptr) {
      if (avail > kMaxPayload) {
        broken_ = true;
        error_ = "net: unterminated JSON line exceeds the payload limit";
        return Status::kProtocolError;
      }
      return Status::kNeedMore;
    }
    json_line->assign(reinterpret_cast<const char*>(p),
                      static_cast<std::size_t>(nl - p));
    consumed_ += static_cast<std::size_t>(nl - p) + 1;
    compact();
    return Status::kJsonLine;
  }

  if (avail < kHeaderSize) {
    // Cheap early rejection: a prefix that already mismatches the magic can
    // never become a valid frame, so garbage fails fast instead of stalling
    // as kNeedMore forever.
    uint32_t magic_prefix = 0;
    std::memcpy(&magic_prefix, p, std::min(avail, sizeof(uint32_t)));
    const uint32_t mask =
        avail >= 4 ? 0xFFFFFFFFu : ((1u << (8 * avail)) - 1u);
    if ((kMagic & mask) != (magic_prefix & mask)) {
      broken_ = true;
      error_ = "net: bad magic — peer is not speaking the STGN protocol";
      return Status::kProtocolError;
    }
    return Status::kNeedMore;
  }

  uint32_t magic, payload_len;
  std::memcpy(&magic, p, 4);
  std::memcpy(&payload_len, p + 4, 4);
  if (magic != kMagic) {
    broken_ = true;
    error_ = "net: bad magic — peer is not speaking the STGN protocol";
    return Status::kProtocolError;
  }
  if (payload_len > kMaxPayload) {
    broken_ = true;
    error_ = "net: frame claims a " + std::to_string(payload_len) +
             "-byte payload (limit " + std::to_string(kMaxPayload) + ")";
    return Status::kProtocolError;
  }
  const std::size_t total = kHeaderSize + payload_len + kTrailerSize;
  if (avail < total) return Status::kNeedMore;

  uint32_t claimed_crc;
  std::memcpy(&claimed_crc, p + kHeaderSize + payload_len, 4);
  const uint32_t actual_crc = crc32(p + 8, kHeaderSize - 8 + payload_len);
  if (claimed_crc != actual_crc) {
    broken_ = true;
    error_ = "net: frame CRC mismatch — corrupt or torn stream";
    return Status::kProtocolError;
  }

  frame->verb = static_cast<Verb>(p[8]);
  frame->flags = p[9];
  std::memcpy(&frame->tenant, p + 10, 2);
  std::memcpy(&frame->request_id, p + 12, 8);
  frame->payload.assign(p + kHeaderSize, p + kHeaderSize + payload_len);
  consumed_ += total;
  compact();
  return Status::kFrame;
}

// ---- payloads -------------------------------------------------------------

std::vector<uint8_t> build_predict_request(const std::vector<uint32_t>& nodes) {
  std::vector<uint8_t> out;
  put<uint32_t>(out, static_cast<uint32_t>(nodes.size()));
  for (uint32_t n : nodes) put<uint32_t>(out, n);
  return out;
}

std::vector<uint32_t> parse_predict_request(const std::vector<uint8_t>& p) {
  Reader r(p);
  const uint32_t n = r.get<uint32_t>();
  if (static_cast<std::size_t>(n) * sizeof(uint32_t) > r.remaining())
    throw NetError(ErrorCode::kBadRequest,
                   "net: predict request claims " + std::to_string(n) +
                       " node ids but only " + std::to_string(r.remaining()) +
                       " bytes follow");
  std::vector<uint32_t> nodes(n);
  if (n > 0) r.get_raw(nodes.data(), nodes.size() * sizeof(uint32_t));
  r.expect_done("predict request");
  return nodes;
}

std::vector<uint8_t> build_predict_response(const PredictWire& resp) {
  std::vector<uint8_t> out;
  put<uint32_t>(out, resp.time);
  put<uint64_t>(out, resp.version);
  put<uint8_t>(out, resp.stale ? 1 : 0);
  put_tensor(out, resp.outputs);
  return out;
}

PredictWire parse_predict_response(const std::vector<uint8_t>& p) {
  Reader r(p);
  PredictWire resp;
  resp.time = r.get<uint32_t>();
  resp.version = r.get<uint64_t>();
  resp.stale = r.get<uint8_t>() != 0;
  resp.outputs = get_tensor(r, "predict response");
  r.expect_done("predict response");
  return resp;
}

std::vector<uint8_t> build_ingest_request(const EdgeDelta& delta,
                                          const Tensor& next_features) {
  std::vector<uint8_t> out;
  put<uint32_t>(out, static_cast<uint32_t>(delta.additions.size()));
  for (const auto& [s, d] : delta.additions) {
    put<uint32_t>(out, s);
    put<uint32_t>(out, d);
  }
  put<uint32_t>(out, static_cast<uint32_t>(delta.deletions.size()));
  for (const auto& [s, d] : delta.deletions) {
    put<uint32_t>(out, s);
    put<uint32_t>(out, d);
  }
  put_tensor(out, next_features);
  return out;
}

void parse_ingest_request(const std::vector<uint8_t>& p, EdgeDelta* delta,
                          Tensor* next_features) {
  Reader r(p);
  const uint32_t n_add = r.get<uint32_t>();
  if (static_cast<std::size_t>(n_add) * 8 > r.remaining())
    throw NetError(ErrorCode::kBadRequest,
                   "net: ingest request claims " + std::to_string(n_add) +
                       " additions past the payload end");
  delta->additions.clear();
  delta->additions.reserve(n_add);
  for (uint32_t i = 0; i < n_add; ++i) {
    const uint32_t s = r.get<uint32_t>();
    const uint32_t d = r.get<uint32_t>();
    delta->additions.emplace_back(s, d);
  }
  const uint32_t n_del = r.get<uint32_t>();
  if (static_cast<std::size_t>(n_del) * 8 > r.remaining())
    throw NetError(ErrorCode::kBadRequest,
                   "net: ingest request claims " + std::to_string(n_del) +
                       " deletions past the payload end");
  delta->deletions.clear();
  delta->deletions.reserve(n_del);
  for (uint32_t i = 0; i < n_del; ++i) {
    const uint32_t s = r.get<uint32_t>();
    const uint32_t d = r.get<uint32_t>();
    delta->deletions.emplace_back(s, d);
  }
  *next_features = get_tensor(r, "ingest request");
  r.expect_done("ingest request");
}

std::vector<uint8_t> build_ingest_response(const IngestWire& resp) {
  std::vector<uint8_t> out;
  put<uint32_t>(out, resp.time);
  put<uint64_t>(out, resp.version);
  put<uint32_t>(out, resp.num_edges);
  return out;
}

IngestWire parse_ingest_response(const std::vector<uint8_t>& p) {
  Reader r(p);
  IngestWire resp;
  resp.time = r.get<uint32_t>();
  resp.version = r.get<uint64_t>();
  resp.num_edges = r.get<uint32_t>();
  r.expect_done("ingest response");
  return resp;
}

std::vector<uint8_t> build_error(ErrorCode code, const std::string& message) {
  std::vector<uint8_t> out;
  put<uint8_t>(out, static_cast<uint8_t>(code));
  out.insert(out.end(), message.begin(), message.end());
  return out;
}

ErrorCode parse_error(const std::vector<uint8_t>& p, std::string* message) {
  Reader r(p);
  const auto code = static_cast<ErrorCode>(r.get<uint8_t>());
  message->assign(reinterpret_cast<const char*>(p.data()) + 1, p.size() - 1);
  return code;
}

// ---- JSON fallback --------------------------------------------------------

namespace {

/// Find `"key"` at object level and return the index just past the ':',
/// or npos. Good enough for the flat single-line requests the fallback
/// accepts; nested objects are rejected by the value parsers below.
std::size_t find_value(const std::string& s, const std::string& key) {
  const std::string needle = "\"" + key + "\"";
  std::size_t at = s.find(needle);
  if (at == std::string::npos) return std::string::npos;
  at += needle.size();
  while (at < s.size() && std::isspace(static_cast<unsigned char>(s[at])))
    ++at;
  if (at >= s.size() || s[at] != ':') return std::string::npos;
  ++at;
  while (at < s.size() && std::isspace(static_cast<unsigned char>(s[at])))
    ++at;
  return at;
}

}  // namespace

JsonRequest parse_json_request(const std::string& line) {
  JsonRequest req;
  std::size_t at = find_value(line, "op");
  if (at == std::string::npos || at >= line.size() || line[at] != '"')
    throw NetError(ErrorCode::kBadRequest,
                   "net: JSON request needs a string \"op\" field "
                   "(predict|stats|health)");
  const std::size_t end = line.find('"', at + 1);
  if (end == std::string::npos)
    throw NetError(ErrorCode::kBadRequest,
                   "net: unterminated \"op\" string");
  req.op = line.substr(at + 1, end - at - 1);
  if (req.op != "predict" && req.op != "stats" && req.op != "health")
    throw NetError(ErrorCode::kBadRequest,
                   "net: unsupported op '" + req.op +
                       "' — the JSON fallback speaks predict|stats|health "
                       "(ingest requires the binary protocol)");

  at = find_value(line, "tenant");
  if (at != std::string::npos) {
    char* parse_end = nullptr;
    const unsigned long v = std::strtoul(line.c_str() + at, &parse_end, 10);
    if (parse_end == line.c_str() + at || v > 0xFFFF)
      throw NetError(ErrorCode::kBadRequest,
                     "net: \"tenant\" must be an integer in [0, 65535]");
    req.tenant = static_cast<uint16_t>(v);
  }

  at = find_value(line, "nodes");
  if (at != std::string::npos) {
    if (at >= line.size() || line[at] != '[')
      throw NetError(ErrorCode::kBadRequest,
                     "net: \"nodes\" must be an array of node ids");
    std::size_t i = at + 1;
    while (true) {
      while (i < line.size() &&
             std::isspace(static_cast<unsigned char>(line[i])))
        ++i;
      if (i >= line.size())
        throw NetError(ErrorCode::kBadRequest,
                       "net: unterminated \"nodes\" array");
      if (line[i] == ']') break;
      // strtoul happily wraps negatives ("-1" parses as ULONG_MAX), so
      // reject a leading '-' explicitly, then range-check the result the
      // same way the tenant field does.
      char* parse_end = nullptr;
      const unsigned long v = std::strtoul(line.c_str() + i, &parse_end, 10);
      if (parse_end == line.c_str() + i || line[i] == '-' ||
          v > 0xFFFFFFFFul)
        throw NetError(ErrorCode::kBadRequest,
                       "net: \"nodes\" must contain only integers in "
                       "[0, 4294967295]");
      req.nodes.push_back(static_cast<uint32_t>(v));
      i = static_cast<std::size_t>(parse_end - line.c_str());
      while (i < line.size() &&
             std::isspace(static_cast<unsigned char>(line[i])))
        ++i;
      if (i < line.size() && line[i] == ',') ++i;
    }
  }
  return req;
}

}  // namespace stgraph::net
