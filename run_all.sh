#!/bin/sh
# Final validation sweep: full test suite + every bench binary.
cd /root/repo
ctest --test-dir build 2>&1 | tee /root/repo/test_output.txt > /dev/null
for b in build/bench/*; do
  if [ -x "$b" ] && [ -f "$b" ]; then
    echo "===== $(basename "$b") ====="
    "$b"
    echo
  fi
done 2>&1 | tee /root/repo/bench_output.txt > /dev/null
echo ALL_DONE > /root/repo/.run_all_done
