// STGraphBase — the paper's Figure 4 graph abstraction. It unifies how the
// temporally-aware executor obtains, for any timestamp, the adjacency
// views the generated kernels need:
//   * forward pass  → in-neighbor view (reverse CSR) + in-degree-sorted
//     processing order,
//   * backward pass → out-neighbor view (CSR) + out-degree-sorted order,
//   * shared edge labels between the two views,
//   * graph property accessors (node/edge counts, degree arrays).
//
// Subclasses decide the storage format: one static snapshot
// (StaticTemporalGraph), fully materialized per-timestamp snapshots
// (NaiveGraph), or a GPMA base graph + deltas with on-demand snapshot
// construction (GPMAGraph).
#pragma once

#include <cstdint>
#include <string>

#include "graph/csr.hpp"
#include "graph/dtdg.hpp"
#include "util/check.hpp"

namespace stgraph {

/// Adjacency views + degree arrays for one timestamp, handed to kernels.
struct SnapshotView {
  /// Forward pass: rows are destinations, neighbors are in-neighbors.
  CsrView in_view;
  /// Backward pass: rows are sources, neighbors are out-neighbors.
  CsrView out_view;
  const uint32_t* in_degrees = nullptr;
  const uint32_t* out_degrees = nullptr;
  /// Per-edge GCN-norm coefficients indexed by eid (shared labels, so one
  /// array serves both directions). Null when the owning graph does not
  /// maintain the cache; kernels then compute the factor inline.
  const float* gcn_coef = nullptr;
  uint32_t num_nodes = 0;
  uint32_t num_edges = 0;
};

class STGraphBase {
 public:
  virtual ~STGraphBase() = default;

  virtual uint32_t num_nodes() const = 0;
  /// Edge count of the snapshot at timestamp t.
  virtual uint32_t num_edges_at(uint32_t t) const = 0;
  /// Number of timestamps this graph object covers.
  virtual uint32_t num_timestamps() const = 0;
  /// True for DTDGs (NaiveGraph, GPMAGraph), false for static-temporal.
  virtual bool is_dynamic() const = 0;
  virtual std::string format_name() const = 0;

  /// Algorithm 2 analogue: position the graph object at timestamp t for a
  /// forward pass and return the kernel views. For GPMAGraph this applies
  /// edge updates from the cached position to t; for the other formats it
  /// is an index lookup. The returned view is valid until the next
  /// get_* call on this object.
  virtual SnapshotView get_graph(uint32_t t) = 0;

  /// Get-Backward-Graph analogue: position at timestamp t for a backward
  /// pass (GPMA applies reverse updates and rebuilds the reverse view).
  virtual SnapshotView get_backward_graph(uint32_t t) = 0;

  /// Device bytes currently held by this graph object (for the memory
  /// experiments).
  virtual std::size_t device_bytes() const = 0;

  // ---- streaming ingestion (serving) ------------------------------------
  /// True when this graph object can extend its timeline in place with
  /// append_delta() — the DTDG formats (NaiveGraph, GPMAGraph) can; a
  /// static-temporal graph cannot change structure.
  virtual bool supports_append() const { return false; }

  /// Append the edge delta turning snapshot T-1 into a new snapshot T
  /// (num_timestamps() grows by one). Implementations must give the strong
  /// exception guarantee: on throw the graph is unchanged and still serves
  /// every existing timestamp. Callers (serve::Server) are responsible for
  /// semantic validation against the live edge set — a delta that deletes
  /// a non-existent edge or re-adds a present one must be rejected before
  /// it reaches the graph.
  virtual void append_delta(const EdgeDelta& delta) {
    (void)delta;
    throw StgError(format_name() + " does not support streaming append");
  }

  // ---- pipelining hint ---------------------------------------------------
  /// Advisory: the caller expects its next get_graph()/get_backward_graph()
  /// to ask for timestamp t. Implementations that maintain views lazily may
  /// start preparing t's views on a background worker (GPMAGraph's
  /// bounded-staleness pipeline); the default is a no-op. Correctness never
  /// depends on the hint — a wrong or missing hint only costs overlap.
  virtual void prefetch(uint32_t t) { (void)t; }
};

}  // namespace stgraph
