#include "nn/optim.hpp"

#include <algorithm>
#include <cmath>

#include "runtime/parallel.hpp"
#include "util/check.hpp"

namespace stgraph::nn {

void Optimizer::zero_grad() {
  for (Parameter& p : params_) p.tensor.zero_grad();
}

float clip_grad_norm(const std::vector<Parameter>& params, float max_norm) {
  STG_CHECK(max_norm > 0.0f, "clip_grad_norm requires max_norm > 0, got ",
            max_norm);
  double sq_sum = 0.0;
  for (const Parameter& p : params) {
    const Tensor g = p.tensor.grad();
    if (!g.defined()) continue;
    const float* pg = g.data();
    const std::size_t n = static_cast<std::size_t>(g.numel());
    for (std::size_t i = 0; i < n; ++i)
      sq_sum += static_cast<double>(pg[i]) * static_cast<double>(pg[i]);
  }
  const float norm = static_cast<float>(std::sqrt(sq_sum));
  if (norm > max_norm) {
    const float scale = max_norm / (norm + 1e-6f);
    for (const Parameter& p : params) {
      Tensor g = p.tensor.grad();
      if (!g.defined()) continue;
      float* pg = g.data();
      const std::size_t n = static_cast<std::size_t>(g.numel());
      device::parallel_for_ranges(n, [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) pg[i] *= scale;
      });
    }
  }
  return norm;
}

Sgd::Sgd(std::vector<Parameter> params, float lr, float momentum)
    : Optimizer(std::move(params), lr), momentum_(momentum) {
  if (momentum_ != 0.0f) {
    velocity_.reserve(params_.size());
    for (const Parameter& p : params_)
      velocity_.push_back(Tensor::zeros(p.tensor.shape()));
  }
}

void Sgd::step() {
  NoGradGuard ng;
  for (size_t pi = 0; pi < params_.size(); ++pi) {
    Tensor& w = params_[pi].tensor;
    Tensor g = w.grad();
    if (!g.defined()) continue;
    float* pw = w.data();
    const float* pg = g.data();
    const std::size_t n = static_cast<std::size_t>(w.numel());
    if (momentum_ == 0.0f) {
      device::parallel_for_ranges(n, [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) pw[i] -= lr_ * pg[i];
      });
    } else {
      float* pv = velocity_[pi].data();
      device::parallel_for_ranges(n, [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) {
          pv[i] = momentum_ * pv[i] + pg[i];
          pw[i] -= lr_ * pv[i];
        }
      });
    }
  }
}

Adam::Adam(std::vector<Parameter> params, float lr, float beta1, float beta2,
           float eps)
    : Optimizer(std::move(params), lr), beta1_(beta1), beta2_(beta2),
      eps_(eps) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const Parameter& p : params_) {
    m_.push_back(Tensor::zeros(p.tensor.shape()));
    v_.push_back(Tensor::zeros(p.tensor.shape()));
  }
}

void Adam::restore_moments(const std::vector<Tensor>& m,
                           const std::vector<Tensor>& v) {
  STG_CHECK(m.size() == m_.size() && v.size() == v_.size(),
            "Adam moment count mismatch: restoring ", m.size(), "/", v.size(),
            " into ", m_.size(), " parameters");
  for (std::size_t i = 0; i < m_.size(); ++i) {
    STG_CHECK(m[i].shape() == m_[i].shape() && v[i].shape() == v_[i].shape(),
              "Adam moment shape mismatch for parameter '", params_[i].name,
              "'");
    std::copy(m[i].data(), m[i].data() + m[i].numel(), m_[i].data());
    std::copy(v[i].data(), v[i].data() + v[i].numel(), v_[i].data());
  }
}

void Adam::step() {
  NoGradGuard ng;
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (size_t pi = 0; pi < params_.size(); ++pi) {
    Tensor& w = params_[pi].tensor;
    Tensor g = w.grad();
    if (!g.defined()) continue;
    float* pw = w.data();
    const float* pg = g.data();
    float* pm = m_[pi].data();
    float* pv = v_[pi].data();
    const std::size_t n = static_cast<std::size_t>(w.numel());
    device::parallel_for_ranges(n, [&](std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) {
        pm[i] = beta1_ * pm[i] + (1.0f - beta1_) * pg[i];
        pv[i] = beta2_ * pv[i] + (1.0f - beta2_) * pg[i] * pg[i];
        const float mhat = pm[i] / bc1;
        const float vhat = pv[i] / bc2;
        pw[i] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
      }
    });
  }
}

}  // namespace stgraph::nn
