// Robustness benchmark (`run_all.sh bench` → BENCH_serve_robust.json):
// drives a WAL-armed serve::Server through the three regimes the
// overload/crash hardening work targets and emits one JSON blob with the
// client-observed latency percentiles, the typed shed accounting, and the
// crash-recovery cost:
//
//   1. overload — a 50 ms injected batch floor (serve.batch.delay) pins
//      service capacity at max_batch per interval while 2× that demand
//      arrives from closed-loop clients carrying deadlines. The serving
//      contract checked here: no ACCEPTED request is observed later than
//      its deadline plus one batch interval (the completion-time deadline
//      check sheds anything slower), and every non-accepted request is a
//      typed shed, not a silent drop.
//   2. faults — probabilistic failpoints on the delta/dispatch/step/WAL
//      paths while a delta stream commits with retries and predict
//      clients keep arriving; exercises the circuit breaker and stale
//      serving under the same stats accounting.
//   3. recovery — recover(checkpoint, wal) into a fresh server; reports
//      replayed record count and wall time.
//
//   ./build/bench/bench_serve_robust --out=BENCH_serve_robust.json
//       --threads=8 --ops=25 --deltas=30 --deadline-ms=200 --seed=42
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "datasets/synthetic.hpp"
#include "gpma/gpma_graph.hpp"
#include "io/train_state.hpp"
#include "nn/models.hpp"
#include "serve/server.hpp"
#include "util/failpoint.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

using namespace stgraph;

namespace {

constexpr int64_t kFeat = 6;
constexpr int64_t kHidden = 12;
constexpr uint32_t kNodes = 16;
constexpr double kBatchIntervalMs = 50.0;  // serve.batch.delay's floor

DtdgEvents ring_base() {
  DtdgEvents ev;
  ev.num_nodes = kNodes;
  for (uint32_t i = 0; i < kNodes; ++i)
    ev.base_edges.emplace_back(i, (i + 1) % kNodes);
  return ev;
}

/// Same chord-toggle stream the chaos harness uses: valid against the live
/// edge set by construction, deterministic per seed.
std::vector<EdgeDelta> chord_deltas(uint64_t seed, uint32_t steps) {
  Rng rng(seed * 7919 + 17);
  std::vector<EdgeDelta> deltas(steps);
  std::vector<bool> chord_on(kNodes, false);
  for (uint32_t t = 0; t < steps; ++t) {
    const auto i = static_cast<uint32_t>(rng.next_below(kNodes));
    const std::pair<uint32_t, uint32_t> chord{i, (i + 3) % kNodes};
    if (chord_on[i])
      deltas[t].deletions.push_back(chord);
    else
      deltas[t].additions.push_back(chord);
    chord_on[i] = !chord_on[i];
  }
  return deltas;
}

Tensor features_at(uint32_t t) {
  Tensor x = Tensor::empty({kNodes, kFeat});
  for (int64_t i = 0; i < kNodes * kFeat; ++i)
    x.data()[i] = 0.1f * static_cast<float>(t + 1) +
                  0.01f * static_cast<float>(i % 13);
  return x;
}

void checkpoint_model(nn::TGCNEncoder& model, const char* path) {
  io::TrainState st;
  st.params = model.parameters();
  for (const auto& p : st.params) {
    st.moment1.push_back(Tensor::zeros(p.tensor.shape()));
    st.moment2.push_back(Tensor::zeros(p.tensor.shape()));
  }
  io::save_train_state(st, path);
}

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      std::max(0.0, p / 100.0 * static_cast<double>(sorted.size()) - 1.0));
  return sorted[std::min(rank, sorted.size() - 1)];
}

}  // namespace

int main(int argc, char** argv) {
  std::string out = "BENCH_serve_robust.json";
  uint32_t num_threads = 8;   // closed-loop clients: 2x the batch slots
  uint32_t ops_per_thread = 25;
  uint32_t num_deltas = 30;
  double deadline_ms = 200.0;
  uint64_t seed = 42;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* prefix) -> std::optional<std::string> {
      if (arg.rfind(prefix, 0) == 0) return arg.substr(std::string(prefix).size());
      return std::nullopt;
    };
    if (auto v = value("--out=")) out = *v;
    else if (auto v = value("--threads=")) num_threads = std::stoul(*v);
    else if (auto v = value("--ops=")) ops_per_thread = std::stoul(*v);
    else if (auto v = value("--deltas=")) num_deltas = std::stoul(*v);
    else if (auto v = value("--deadline-ms=")) deadline_ms = std::stod(*v);
    else if (auto v = value("--seed=")) seed = std::stoull(*v);
    else {
      std::cerr << "unknown argument: " << arg << "\n";
      return 2;
    }
  }

  const char* ckpt = "/tmp/stgraph_bench_robust.stgt";
  const char* wal = "/tmp/stgraph_bench_robust.stgw";
  std::remove(wal);

  GpmaGraph graph(ring_base());
  Rng rng(31);
  nn::TGCNEncoder model(kFeat, kHidden, rng);
  checkpoint_model(model, ckpt);

  serve::ServeConfig cfg;
  cfg.max_batch = 4;  // with the 50ms floor: capacity = 4 requests / 50ms
  cfg.queue_capacity = 64;
  cfg.circuit_failure_threshold = 3;
  cfg.circuit_cooldown_ms = 20;
  cfg.max_inflight_ingests = 2;
  cfg.wal_path = wal;
  serve::Server server(graph, model, cfg);
  server.load(ckpt);
  server.start(features_at(0));

  // ---- phase 1: 2x overload with deadlines -------------------------------
  // Capacity is max_batch per 50ms interval; 2 * max_batch closed-loop
  // clients therefore offer ~2x that. Accepted requests must land within
  // deadline + one batch interval — measured from the CLIENT side, which
  // is stricter than the server's own completion check.
  failpoint::enable("serve.batch.delay", failpoint::Spec::always());
  const auto deadline =
      std::chrono::microseconds(static_cast<int64_t>(deadline_ms * 1000.0));
  std::atomic<uint64_t> accepted{0}, overload_shed{0}, overload_err{0};
  std::atomic<uint64_t> deadline_violations{0};
  std::vector<std::vector<double>> lat_us(num_threads);
  {
    std::vector<std::thread> clients;
    for (uint32_t tid = 0; tid < num_threads; ++tid)
      clients.emplace_back([&, tid] {
        Rng crng(seed ^ (0xBEEFull + tid));
        lat_us[tid].reserve(ops_per_thread);
        for (uint32_t k = 0; k < ops_per_thread; ++k) {
          std::vector<uint32_t> nodes{
              static_cast<uint32_t>(crng.next_below(kNodes))};
          Timer t;
          try {
            server.predict(std::move(nodes), deadline);
            const double us = t.seconds() * 1e6;
            lat_us[tid].push_back(us);
            accepted.fetch_add(1, std::memory_order_relaxed);
            if (us > deadline_ms * 1000.0 + kBatchIntervalMs * 1000.0)
              deadline_violations.fetch_add(1, std::memory_order_relaxed);
          } catch (const serve::ShedError&) {
            overload_shed.fetch_add(1, std::memory_order_relaxed);
          } catch (const StgError&) {
            overload_err.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    for (auto& th : clients) th.join();
  }
  failpoint::disable_all();

  std::vector<double> all_lat;
  for (auto& v : lat_us) all_lat.insert(all_lat.end(), v.begin(), v.end());
  std::sort(all_lat.begin(), all_lat.end());

  // ---- phase 2: probabilistic faults + delta stream ----------------------
  failpoint::set_seed(seed);
  failpoint::activate_from_spec(
      "serve.delta.apply=p:0.08; serve.batch.dispatch=p:0.06; "
      "serve.step.poison=p:0.04; serve.wal.append=p:0.04");
  std::atomic<uint64_t> fault_ok{0}, fault_stale{0}, fault_shed{0};
  std::atomic<uint64_t> fault_err{0}, ingest_retries{0};
  std::atomic<bool> ingest_done{false};
  std::thread prober([&] {
    Rng prng(seed ^ 0xACE0ull);
    while (!ingest_done.load(std::memory_order_relaxed)) {
      try {
        const serve::PredictResult res = server.predict(
            {static_cast<uint32_t>(prng.next_below(kNodes))},
            std::chrono::seconds(5));
        (res.stale ? fault_stale : fault_ok).fetch_add(1);
      } catch (const serve::ShedError&) {
        fault_shed.fetch_add(1);
      } catch (const StgError&) {
        fault_err.fetch_add(1);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });
  const std::vector<EdgeDelta> deltas = chord_deltas(seed, num_deltas);
  bool ingest_stuck = false;
  for (uint32_t t = 0; t < num_deltas && !ingest_stuck; ++t) {
    int attempt = 0;
    for (;; ++attempt) {
      try {
        server.ingest(deltas[t], features_at(t + 1));
        break;
      } catch (const StgError&) {
        ingest_retries.fetch_add(1);
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      if (attempt >= 128) {
        std::cerr << "ingest step " << t << " never committed\n";
        ingest_stuck = true;
        break;
      }
    }
  }
  ingest_done.store(true, std::memory_order_relaxed);
  prober.join();
  failpoint::disable_all();

  const serve::ReadView view = server.read_view();
  server.stop();
  const serve::StatsReport rep = server.stats();

  // ---- phase 3: recovery from checkpoint + WAL ---------------------------
  GpmaGraph graph2(ring_base());
  Rng rng2(99);  // junk init — recover() overwrites it from the checkpoint
  nn::TGCNEncoder model2(kFeat, kHidden, rng2);
  serve::Server server2(graph2, model2);
  Timer recovery_timer;
  server2.recover(ckpt, wal);
  const double recover_wall_s = recovery_timer.seconds();
  const serve::ReadView rview = server2.read_view();
  server2.predict();  // the recovered view actually serves
  server2.stop();
  const serve::StatsReport rrep = server2.stats();
  std::remove(ckpt);

  // ---- contract checks ---------------------------------------------------
  int rc = 0;
  const uint64_t issued = static_cast<uint64_t>(num_threads) * ops_per_thread;
  if (accepted + overload_shed + overload_err != issued) {
    std::cerr << "FAIL: overload phase lost requests (" << accepted << "+"
              << overload_shed << "+" << overload_err << " != " << issued
              << ")\n";
    rc = 1;
  }
  if (deadline_violations.load() > 0) {
    std::cerr << "FAIL: " << deadline_violations.load()
              << " accepted requests exceeded deadline + one batch interval\n";
    rc = 1;
  }
  if (rep.shed_total != rep.shed_queue_full + rep.shed_deadline_expired +
                            rep.shed_draining + rep.shed_circuit_open) {
    std::cerr << "FAIL: shed taxonomy does not sum to shed_total\n";
    rc = 1;
  }
  if (view.time != num_deltas || ingest_stuck) {
    std::cerr << "FAIL: delta stream did not fully commit (t=" << view.time
              << ")\n";
    rc = 1;
  }
  if (rview.time != view.time || rview.version != view.version) {
    std::cerr << "FAIL: recovered view (t=" << rview.time << " v"
              << rview.version << ") != pre-crash view (t=" << view.time
              << " v" << view.version << ")\n";
    rc = 1;
  }

  // ---- emit --------------------------------------------------------------
  std::ostringstream js;
  js << "{\n"
     << "  \"bench\": \"serve_robust\",\n"
     << "  \"overload\": {\n"
     << "    \"factor\": 2.0,\n"
     << "    \"deadline_ms\": " << deadline_ms << ",\n"
     << "    \"batch_interval_ms\": " << kBatchIntervalMs << ",\n"
     << "    \"issued\": " << issued << ",\n"
     << "    \"accepted\": " << accepted.load() << ",\n"
     << "    \"shed\": " << overload_shed.load() << ",\n"
     << "    \"errors\": " << overload_err.load() << ",\n"
     << "    \"deadline_violations\": " << deadline_violations.load() << ",\n"
     << "    \"client_p50_us\": " << percentile(all_lat, 50.0) << ",\n"
     << "    \"client_p99_us\": " << percentile(all_lat, 99.0) << ",\n"
     << "    \"client_p999_us\": " << percentile(all_lat, 99.9) << ",\n"
     << "    \"client_max_us\": "
     << (all_lat.empty() ? 0.0 : all_lat.back()) << "\n"
     << "  },\n"
     << "  \"faults\": {\n"
     << "    \"fresh\": " << fault_ok.load() << ",\n"
     << "    \"stale\": " << fault_stale.load() << ",\n"
     << "    \"shed\": " << fault_shed.load() << ",\n"
     << "    \"errors\": " << fault_err.load() << ",\n"
     << "    \"ingest_retries\": " << ingest_retries.load() << "\n"
     << "  },\n"
     << "  \"recovery\": {\n"
     << "    \"records\": " << rrep.recovered_records << ",\n"
     << "    \"seconds\": " << rrep.recovery_seconds << ",\n"
     << "    \"wall_seconds\": " << recover_wall_s << "\n"
     << "  },\n"
     << "  \"server\": " << rep.to_json() << "\n"
     << "}\n";
  std::ofstream f(out);
  f << js.str();
  f.close();

  std::cout << "overload: " << accepted.load() << "/" << issued
            << " accepted, " << overload_shed.load() << " shed, "
            << deadline_violations.load() << " deadline violations\n"
            << "client p50 " << percentile(all_lat, 50.0) << " us, p99 "
            << percentile(all_lat, 99.0) << " us, p999 "
            << percentile(all_lat, 99.9) << " us\n"
            << "faults: " << fault_ok.load() << " fresh, "
            << fault_stale.load() << " stale, " << fault_shed.load()
            << " shed, " << ingest_retries.load() << " ingest retries; "
            << rep.circuit_trips << " circuit trips\n"
            << "recovery: " << rrep.recovered_records << " records in "
            << rrep.recovery_seconds << " s\n"
            << "wrote " << out << (rc == 0 ? "" : "  [CONTRACT FAILURES]")
            << "\n";
  return rc;
}
