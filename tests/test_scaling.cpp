// Shard / pipeline parity suite (PR 8). The hard contract: sharded,
// pipelined multi-core training is an execution-schedule change only —
// losses and gradients must be bit-identical to the single-shard serial
// schedule for any shard count and with the prefetch pipeline on or off.
// ctest re-runs this whole binary under STGRAPH_NUM_THREADS=1 and under
// STGRAPH_PIPELINE=off (see tests/CMakeLists.txt), so the parity claims
// are checked across every schedule the runtime can pick.
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "core/trainer.hpp"
#include "datasets/synthetic.hpp"
#include "gpma/gpma_graph.hpp"
#include "graph/reorder.hpp"
#include "graph/shard.hpp"
#include "nn/models.hpp"
#include "util/rng.hpp"

namespace stgraph {
namespace {

using namespace datasets;

// ---------------------------------------------------------------------------
// Partitioner unit tests
// ---------------------------------------------------------------------------

TEST(BalancedRanges, CoversEverythingMonotonically) {
  Rng rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    const uint32_t n = 1 + static_cast<uint32_t>(rng.next_below(500));
    const uint32_t parts = 1 + static_cast<uint32_t>(rng.next_below(9));
    std::vector<uint64_t> w(n);
    for (auto& x : w) x = rng.next_below(100);
    const auto bounds = balanced_ranges(w, parts);
    ASSERT_EQ(bounds.size(), parts + 1u);
    EXPECT_EQ(bounds.front(), 0u);
    EXPECT_EQ(bounds.back(), n);
    for (uint32_t p = 0; p < parts; ++p) EXPECT_LE(bounds[p], bounds[p + 1]);
  }
}

TEST(BalancedRanges, BalancesUniformWeights) {
  std::vector<uint64_t> w(1000, 5);
  const auto bounds = balanced_ranges(w, 4);
  for (uint32_t p = 0; p < 4; ++p)
    EXPECT_EQ(bounds[p + 1] - bounds[p], 250u) << "part " << p;
}

TEST(BalancedRanges, ZeroTotalWeightSplitsByCount) {
  std::vector<uint64_t> w(10, 0);
  const auto bounds = balanced_ranges(w, 3);
  ASSERT_EQ(bounds.size(), 4u);
  EXPECT_EQ(bounds.front(), 0u);
  EXPECT_EQ(bounds.back(), 10u);
  for (uint32_t p = 0; p < 3; ++p)
    EXPECT_GE(bounds[p + 1] - bounds[p], 3u);
}

TEST(BalancedRanges, HeavyVertexGetsItsOwnNeighborhood) {
  // One vertex holding ~all the weight: no part may receive more than its
  // range plus that single indivisible vertex.
  std::vector<uint64_t> w(100, 1);
  w[37] = 10000;
  const auto bounds = balanced_ranges(w, 4);
  EXPECT_EQ(bounds.back(), 100u);
  // The cut right of vertex 37 closes its part immediately.
  for (uint32_t p = 0; p < 4; ++p) {
    if (37 >= bounds[p] && 37 < bounds[p + 1]) {
      EXPECT_EQ(bounds[p + 1], 38u);
    }
  }
}

TEST(ShardPlan, InvariantsHoldOnRandomGraphs) {
  Rng rng(23);
  for (int trial = 0; trial < 10; ++trial) {
    const uint32_t n = 20 + static_cast<uint32_t>(rng.next_below(300));
    const uint32_t S = 2 + static_cast<uint32_t>(rng.next_below(6));
    std::vector<uint32_t> ind(n), outd(n);
    for (uint32_t v = 0; v < n; ++v) {
      ind[v] = static_cast<uint32_t>(rng.next_below(8));
      outd[v] = static_cast<uint32_t>(rng.next_below(8));
    }
    // Degree orders: (deg desc, id asc) — the canonical strict order.
    std::vector<uint32_t> fwd(n), bwd(n);
    std::iota(fwd.begin(), fwd.end(), 0u);
    std::iota(bwd.begin(), bwd.end(), 0u);
    std::sort(fwd.begin(), fwd.end(), [&](uint32_t a, uint32_t b) {
      return ind[a] != ind[b] ? ind[a] > ind[b] : a < b;
    });
    std::sort(bwd.begin(), bwd.end(), [&](uint32_t a, uint32_t b) {
      return outd[a] != outd[b] ? outd[a] > outd[b] : a < b;
    });

    const ShardPlan plan = build_shard_plan(n, ind.data(), outd.data(),
                                            fwd.data(), bwd.data(), S);
    ASSERT_TRUE(plan.active());
    ASSERT_EQ(plan.vertex_bounds.size(), S + 1u);
    EXPECT_EQ(plan.vertex_bounds.front(), 0u);
    EXPECT_EQ(plan.vertex_bounds.back(), n);

    // Each direction's order is a permutation, every vertex lands in its
    // own shard's slice, and within a shard the slice preserves global
    // (degree-descending) relative order.
    for (int dir = 0; dir < 2; ++dir) {
      const DeviceBuffer<uint32_t>& order = dir == 0 ? plan.in_order
                                                     : plan.out_order;
      const std::vector<uint32_t>& global = dir == 0 ? fwd : bwd;
      std::vector<uint32_t> rank(n);
      for (uint32_t i = 0; i < n; ++i) rank[global[i]] = i;
      std::vector<uint8_t> seen(n, 0);
      for (uint32_t s = 0; s < S; ++s) {
        uint32_t prev_rank = 0;
        bool first = true;
        for (uint32_t i = plan.vertex_bounds[s]; i < plan.vertex_bounds[s + 1];
             ++i) {
          const uint32_t v = order[i];
          ASSERT_LT(v, n);
          ASSERT_FALSE(seen[v]) << "vertex " << v << " listed twice";
          seen[v] = 1;
          EXPECT_EQ(plan.shard_of(v), s) << "vertex " << v;
          if (!first) EXPECT_GT(rank[v], prev_rank) << "order not stable";
          prev_rank = rank[v];
          first = false;
        }
      }
      for (uint32_t v = 0; v < n; ++v) ASSERT_TRUE(seen[v]);
    }
  }
}

TEST(ShardPlan, SingleShardIsInactive) {
  std::vector<uint32_t> deg(10, 1), order(10);
  std::iota(order.begin(), order.end(), 0u);
  const ShardPlan plan = build_shard_plan(10, deg.data(), deg.data(),
                                          order.data(), order.data(), 1);
  EXPECT_FALSE(plan.active());
  EXPECT_EQ(plan.num_shards, 1u);
}

TEST(ShardPlan, CutEdgesCountedAgainstReference) {
  // Two shards of 2 vertices; edges 0->1 (internal), 0->2, 1->3 (cut),
  // 2->3 (internal).
  DtdgEvents ev;
  ev.num_nodes = 4;
  ev.base_edges = {{0, 1}, {0, 2}, {1, 3}, {2, 3}};
  GpmaGraph g(ev);
  g.set_num_shards(2);
  const SnapshotView v = g.get_graph(0);
  ASSERT_EQ(v.out_view.num_shards, 2u);
  std::vector<uint32_t> ind(4), outd(4);
  for (uint32_t i = 0; i < 4; ++i) {
    ind[i] = v.in_degrees[i];
    outd[i] = v.out_degrees[i];
  }
  const ShardPlan plan =
      build_shard_plan(4, ind.data(), outd.data(), v.in_view.node_ids,
                       v.out_view.node_ids, 2);
  EXPECT_EQ(count_cut_edges(v.out_view, plan), 2u);
}

// ---------------------------------------------------------------------------
// End-to-end parity fuzz
// ---------------------------------------------------------------------------

EdgeList random_stream(uint32_t nodes, std::size_t events, uint64_t seed) {
  Rng rng(seed);
  EdgeList stream;
  for (std::size_t i = 0; i < events; ++i) {
    uint32_t s = static_cast<uint32_t>(rng.next_below(nodes));
    uint32_t d = static_cast<uint32_t>(rng.next_below(nodes));
    if (s == d) d = (d + 1) % nodes;
    stream.emplace_back(s, d);
  }
  return stream;
}

struct TrainOutcome {
  std::vector<double> epoch_losses;
  std::vector<std::vector<float>> params;
  std::vector<std::vector<float>> grads;
};

TrainOutcome train_gpma(const DtdgEvents& ev, const TemporalSignal& signal,
                        const core::TrainConfig& cfg, uint32_t shards,
                        bool pipeline, uint64_t model_seed) {
  GpmaGraph g(ev);
  g.set_num_shards(shards);
  g.set_pipeline_enabled(pipeline);
  Rng rng(model_seed);
  nn::TGCNEncoder model(signal.feature_size(), 8, rng);
  core::STGraphTrainer trainer(g, model, signal, cfg);
  TrainOutcome out;
  for (uint32_t e = 0; e < cfg.epochs; ++e)
    out.epoch_losses.push_back(trainer.train_epoch().loss);
  for (const nn::Parameter& p : model.parameters()) {
    const Tensor& t = p.tensor;
    out.params.emplace_back(t.data(), t.data() + t.numel());
    const Tensor gr = t.grad();
    if (gr.defined())
      out.grads.emplace_back(gr.data(), gr.data() + gr.numel());
  }
  return out;
}

void expect_bit_identical(const TrainOutcome& a, const TrainOutcome& b,
                          const std::string& label) {
  ASSERT_EQ(a.epoch_losses.size(), b.epoch_losses.size()) << label;
  for (std::size_t e = 0; e < a.epoch_losses.size(); ++e) {
    // Bit-exact double compare: the loss is a deterministic reduction of
    // bit-identical kernel outputs.
    EXPECT_EQ(a.epoch_losses[e], b.epoch_losses[e])
        << label << " loss diverged at epoch " << e;
  }
  ASSERT_EQ(a.params.size(), b.params.size()) << label;
  for (std::size_t i = 0; i < a.params.size(); ++i) {
    ASSERT_EQ(a.params[i].size(), b.params[i].size()) << label;
    EXPECT_EQ(std::memcmp(a.params[i].data(), b.params[i].data(),
                          a.params[i].size() * sizeof(float)),
              0)
        << label << " parameter " << i << " bytes diverged";
  }
  ASSERT_EQ(a.grads.size(), b.grads.size()) << label;
  for (std::size_t i = 0; i < a.grads.size(); ++i) {
    ASSERT_EQ(a.grads[i].size(), b.grads[i].size()) << label;
    EXPECT_EQ(std::memcmp(a.grads[i].data(), b.grads[i].data(),
                          a.grads[i].size() * sizeof(float)),
              0)
        << label << " gradient " << i << " bytes diverged";
  }
}

TEST(ScalingParity, ShardCountNeverChangesTrainingFuzz) {
  Rng meta(2025);
  for (int trial = 0; trial < 3; ++trial) {
    const uint32_t nodes = 60 + static_cast<uint32_t>(meta.next_below(80));
    const std::size_t events = 1500 + meta.next_below(2000);
    const uint64_t seed = meta.next_below(1u << 20);
    DtdgEvents ev =
        window_edge_stream(nodes, random_stream(nodes, events, seed), 6.0);
    DynamicLoadOptions o;
    o.feature_size = 4;
    o.link_samples_per_step = 24;
    TemporalSignal signal = make_dynamic_signal(ev, o);
    core::TrainConfig cfg;
    cfg.epochs = 2;
    cfg.sequence_length = 4;
    cfg.lr = 5e-3f;
    cfg.task = core::Task::kLinkPrediction;

    const TrainOutcome ref =
        train_gpma(ev, signal, cfg, /*shards=*/1, /*pipeline=*/true, 21);
    for (uint32_t S : {2u, 3u, 7u}) {
      const TrainOutcome got = train_gpma(ev, signal, cfg, S, true, 21);
      expect_bit_identical(ref, got,
                           "trial " + std::to_string(trial) + " S=" +
                               std::to_string(S));
    }
  }
}

TEST(ScalingParity, PipelineOffMatchesPipelineOnBitForBit) {
  DtdgEvents ev = window_edge_stream(100, random_stream(100, 3000, 77), 6.0);
  DynamicLoadOptions o;
  o.feature_size = 4;
  o.link_samples_per_step = 24;
  TemporalSignal signal = make_dynamic_signal(ev, o);
  core::TrainConfig cfg;
  cfg.epochs = 2;
  cfg.sequence_length = 4;
  cfg.lr = 5e-3f;
  cfg.task = core::Task::kLinkPrediction;

  const TrainOutcome on = train_gpma(ev, signal, cfg, 4, /*pipeline=*/true, 33);
  const TrainOutcome off =
      train_gpma(ev, signal, cfg, 4, /*pipeline=*/false, 33);
  expect_bit_identical(on, off, "pipeline on/off");
}

TEST(ScalingParity, AutoShardCountMatchesExplicitOne) {
  // Default construction resolves STGRAPH_SHARDS / auto; whatever it picks
  // must agree with the explicit single-shard reference.
  DtdgEvents ev = window_edge_stream(90, random_stream(90, 2500, 5), 6.0);
  DynamicLoadOptions o;
  o.feature_size = 4;
  o.link_samples_per_step = 24;
  TemporalSignal signal = make_dynamic_signal(ev, o);
  core::TrainConfig cfg;
  cfg.epochs = 1;
  cfg.sequence_length = 4;
  cfg.lr = 5e-3f;
  cfg.task = core::Task::kLinkPrediction;

  const TrainOutcome ref = train_gpma(ev, signal, cfg, 1, true, 9);

  GpmaGraph g(ev);  // auto shard count, pipeline per env
  Rng rng(9);
  nn::TGCNEncoder model(signal.feature_size(), 8, rng);
  core::STGraphTrainer trainer(g, model, signal, cfg);
  const double loss = trainer.train_epoch().loss;
  EXPECT_EQ(ref.epoch_losses[0], loss);
}

TEST(ScalingPipeline, PrefetchHitsDuringTraining) {
  DtdgEvents ev = window_edge_stream(80, random_stream(80, 2000, 13), 6.0);
  DynamicLoadOptions o;
  o.feature_size = 4;
  o.link_samples_per_step = 16;
  TemporalSignal signal = make_dynamic_signal(ev, o);
  core::TrainConfig cfg;
  cfg.epochs = 1;
  cfg.sequence_length = 6;
  cfg.lr = 5e-3f;
  cfg.task = core::Task::kLinkPrediction;

  GpmaGraph g(ev);
  if (!g.pipeline_enabled()) GTEST_SKIP() << "STGRAPH_PIPELINE=off";
  Rng rng(41);
  nn::TGCNEncoder model(signal.feature_size(), 8, rng);
  core::STGraphTrainer trainer(g, model, signal, cfg);
  const core::EpochStats stats = trainer.train_epoch();
  // The trainer hints every in-sequence step and the executor hints every
  // backward step: most Get-Graph calls must be served from a published
  // snapshot prepared off the critical path.
  EXPECT_GT(stats.prefetch_hits, 0u);
  EXPECT_GT(stats.prefetch_hits, stats.prefetch_misses);
  EXPECT_GT(stats.forward_seconds, 0.0);
  EXPECT_GT(stats.backward_seconds, 0.0);
  EXPECT_GE(stats.stall_seconds, 0.0);
}

TEST(ScalingPipeline, SerialScheduleReportsNoPrefetch) {
  DtdgEvents ev = window_edge_stream(50, random_stream(50, 800, 3), 6.0);
  DynamicLoadOptions o;
  o.feature_size = 4;
  o.link_samples_per_step = 16;
  TemporalSignal signal = make_dynamic_signal(ev, o);
  core::TrainConfig cfg;
  cfg.epochs = 1;
  cfg.sequence_length = 4;
  cfg.task = core::Task::kLinkPrediction;

  GpmaGraph g(ev);
  g.set_pipeline_enabled(false);
  Rng rng(51);
  nn::TGCNEncoder model(signal.feature_size(), 8, rng);
  core::STGraphTrainer trainer(g, model, signal, cfg);
  const core::EpochStats stats = trainer.train_epoch();
  EXPECT_EQ(stats.prefetch_hits, 0u);
  EXPECT_EQ(stats.prefetch_misses, 0u);
  EXPECT_EQ(stats.stall_seconds, 0.0);
}

TEST(ScalingShards, ViewsCarryShardAnnotations) {
  DtdgEvents ev = window_edge_stream(120, random_stream(120, 2500, 7), 6.0);
  GpmaGraph g(ev);
  g.set_num_shards(4);
  EXPECT_EQ(g.num_shards(), 4u);
  const SnapshotView v = g.get_graph(0);
  ASSERT_EQ(v.out_view.num_shards, 4u);
  ASSERT_EQ(v.in_view.num_shards, 4u);
  ASSERT_NE(v.out_view.shard_order, nullptr);
  ASSERT_NE(v.in_view.shard_bounds, nullptr);
  EXPECT_EQ(v.in_view.shard_bounds[0], 0u);
  EXPECT_EQ(v.in_view.shard_bounds[4], v.num_nodes);
  // Sharding off again strips the annotations.
  g.set_num_shards(1);
  const SnapshotView v1 = g.get_graph(0);
  EXPECT_EQ(v1.out_view.num_shards, 1u);
  EXPECT_EQ(v1.out_view.shard_order, nullptr);
}

}  // namespace
}  // namespace stgraph
