// Micro/ablation benches for the kernel design choices DESIGN.md calls
// out:
//   * fused gather-aggregate-update kernel vs unfused op-at-a-time
//     (edge-parallel gather → scale → scatter),
//   * degree-sorted node_ids processing order vs natural order,
//   * vertex-per-item vs feature-tile scheduling across feature sizes.
//
// With --json-out=PATH the google-benchmark suite is skipped and a
// single-threaded kernel-engine ablation (interpreted scalar reference vs
// SIMD engine, inline vs cached GCN-norm coefficients, fused vs unfused)
// runs instead, writing one JSON object for run_all.sh / CI trend lines.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <set>
#include <sstream>
#include <string>

#include "core/backend.hpp"
#include "runtime/simd.hpp"

#include "baseline/edge_ops.hpp"
#include "compiler/fusion.hpp"
#include "compiler/kernel.hpp"
#include "compiler/trace.hpp"
#include "core/trainer.hpp"
#include "datasets/synthetic.hpp"
#include "graph/reorder.hpp"
#include "graph/static_graph.hpp"
#include "nn/gconv_gru.hpp"
#include "nn/models.hpp"
#include "runtime/parallel.hpp"
#include "tensor/op_profile.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"

namespace {
using namespace stgraph;

struct Fixture {
  uint32_t n;
  EdgeList edges;
  std::unique_ptr<StaticTemporalGraph> graph;
  SnapshotView view;
  compiler::KernelSpec spec;
  std::vector<float> x;

  Fixture(uint32_t nodes, int edge_count, int64_t F) : n(nodes) {
    Rng rng(7);
    std::set<std::pair<uint32_t, uint32_t>> seen;
    while (static_cast<int>(edges.size()) < edge_count) {
      uint32_t s = rng.next_below(n), d = rng.next_below(n);
      if (s == d || !seen.insert({s, d}).second) continue;
      edges.emplace_back(s, d);
    }
    graph = std::make_unique<StaticTemporalGraph>(n, edges, 1);
    view = graph->get_graph(0);
    spec = compiler::compile(
        compiler::trace([](compiler::VertexContext& v) -> compiler::AggExpr {
          return v.agg_sum(v.gcn_norm() * v.src_feature(0))
              .with_self_loop(v.gcn_norm());
        }));
    x.resize(static_cast<std::size_t>(n) * F);
    for (auto& v : x) v = rng.normal();
  }
};

void BM_FusedAggregation(benchmark::State& state) {
  const int64_t F = state.range(0);
  Fixture fx(2000, 20000, F);
  std::vector<float> out(fx.x.size());
  compiler::KernelArgs args;
  args.view = fx.view.in_view;
  args.in_degrees = fx.view.in_degrees;
  const float* inputs[1] = {fx.x.data()};
  args.inputs = inputs;
  args.self_features = fx.x.data();
  args.out = out.data();
  args.num_feats = static_cast<uint32_t>(F);
  args.producer_is_col = true;
  for (auto _ : state) {
    compiler::run_kernel(fx.spec, args);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * fx.edges.size() * F);
}
BENCHMARK(BM_FusedAggregation)->Arg(8)->Arg(32)->Arg(128);

void BM_UnfusedEdgeParallel(benchmark::State& state) {
  const int64_t F = state.range(0);
  Fixture fx(2000, 20000, F);
  baseline::CooSnapshot coo = baseline::make_coo(fx.n, fx.edges);
  Tensor xt = Tensor::from_vector(fx.x, {fx.n, F});
  NoGradGuard ng;  // measure the kernels, not autograd bookkeeping
  for (auto _ : state) {
    Tensor coef = baseline::gcn_norm(coo);
    Tensor msg = baseline::gather_messages(xt, coo);
    msg = baseline::scale_messages(msg, coef);
    Tensor out = ops::add(baseline::scatter_add(msg, coo),
                          baseline::self_loop_contribution(xt, coo));
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * fx.edges.size() * F);
}
BENCHMARK(BM_UnfusedEdgeParallel)->Arg(8)->Arg(32)->Arg(128);

void BM_DegreeSortedOrder(benchmark::State& state) {
  const bool sorted = state.range(0) != 0;
  const int64_t F = 32;
  Fixture fx(5000, 50000, F);
  std::vector<float> out(fx.x.size());
  compiler::KernelArgs args;
  args.view = fx.view.in_view;
  if (!sorted) args.view.node_ids = nullptr;  // natural order ablation
  args.in_degrees = fx.view.in_degrees;
  const float* inputs[1] = {fx.x.data()};
  args.inputs = inputs;
  args.self_features = fx.x.data();
  args.out = out.data();
  args.num_feats = F;
  args.producer_is_col = true;
  for (auto _ : state) {
    compiler::run_kernel(fx.spec, args);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetLabel(sorted ? "degree_sorted" : "natural_order");
}
BENCHMARK(BM_DegreeSortedOrder)->Arg(1)->Arg(0);

void BM_RcmReorderedAggregation(benchmark::State& state) {
  // Locality ablation: same aggregation on a scrambled vs RCM-relabelled
  // grid graph (structured graphs are where reordering pays).
  const bool reordered = state.range(0) != 0;
  const uint32_t side = 100;
  const uint32_t n = side * side;
  EdgeList edges;
  auto id = [side](uint32_t r, uint32_t c) { return r * side + c; };
  for (uint32_t r = 0; r < side; ++r)
    for (uint32_t c = 0; c < side; ++c) {
      if (c + 1 < side) edges.emplace_back(id(r, c), id(r, c + 1));
      if (r + 1 < side) edges.emplace_back(id(r, c), id(r + 1, c));
    }
  Rng rng(11);
  VertexOrder scramble(n);
  for (uint32_t v = 0; v < n; ++v) scramble[v] = v;
  rng.shuffle(scramble);
  edges = relabel_edges(edges, scramble);
  if (reordered) edges = relabel_edges(edges, rcm_order(n, edges));

  const int64_t F = 32;
  StaticTemporalGraph graph(n, edges, 1);
  SnapshotView view = graph.get_graph(0);
  compiler::KernelSpec spec = compiler::compile(
      compiler::trace([](compiler::VertexContext& v) -> compiler::AggExpr {
        return v.agg_sum(v.gcn_norm() * v.src_feature(0))
            .with_self_loop(v.gcn_norm());
      }));
  std::vector<float> x(static_cast<std::size_t>(n) * F), out(x.size());
  for (auto& v : x) v = rng.normal();
  compiler::KernelArgs args;
  args.view = view.in_view;
  args.in_degrees = view.in_degrees;
  const float* inputs[1] = {x.data()};
  args.inputs = inputs;
  args.self_features = x.data();
  args.out = out.data();
  args.num_feats = F;
  args.producer_is_col = true;
  for (auto _ : state) {
    compiler::run_kernel(spec, args);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetLabel(reordered ? "rcm" : "scrambled");
  state.counters["mean_edge_span"] = mean_edge_span(n, edges);
}
BENCHMARK(BM_RcmReorderedAggregation)->Arg(0)->Arg(1);

void BM_KernelLaunchCount(benchmark::State& state) {
  // Fusion proxy: launches per aggregation — fused path fires exactly one
  // kernel; the unfused pipeline fires one per stage.
  const int64_t F = 16;
  Fixture fx(500, 4000, F);
  std::vector<float> out(fx.x.size());
  compiler::KernelArgs args;
  args.view = fx.view.in_view;
  args.in_degrees = fx.view.in_degrees;
  const float* inputs[1] = {fx.x.data()};
  args.inputs = inputs;
  args.self_features = fx.x.data();
  args.out = out.data();
  args.num_feats = F;
  args.producer_is_col = true;
  auto& stats = device::KernelStats::instance();
  uint64_t launches = 0;
  for (auto _ : state) {
    stats.reset();
    compiler::run_kernel(fx.spec, args);
    launches = stats.launches.load();
  }
  state.counters["launches_per_agg"] = static_cast<double>(launches);
}
BENCHMARK(BM_KernelLaunchCount);

// ---- --json-out ablation ---------------------------------------------------

// Best-of-reps wall time of one launch (sheds scheduler noise).
template <typename Fn>
double time_best(Fn&& fn, int reps = 5) {
  double best = 1e100;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

int run_json_ablation(const std::string& path) {
  // Pin to one lane before the pool spins up: the acceptance metric is
  // per-core kernel throughput, not parallel scaling.
  setenv("STGRAPH_NUM_THREADS", "1", 1);

  const uint32_t n = 100000;
  const int m = 800000;
  const int64_t F = 32;
  Fixture fx(n, m, F);
  std::vector<float> out(fx.x.size());
  compiler::KernelArgs args;
  args.view = fx.view.in_view;
  args.in_degrees = fx.view.in_degrees;
  const float* inputs[1] = {fx.x.data()};
  args.inputs = inputs;
  args.self_features = fx.x.data();
  args.out = out.data();
  args.num_feats = static_cast<uint32_t>(F);
  args.producer_is_col = true;

  // Warm both paths (page in the views/features).
  compiler::run_kernel_reference(fx.spec, args);
  compiler::run_kernel(fx.spec, args);

  const double scalar_s =
      time_best([&] { compiler::run_kernel_reference(fx.spec, args); });
  args.gcn_coef = nullptr;
  const double simd_inline_s =
      time_best([&] { compiler::run_kernel(fx.spec, args); });
  args.gcn_coef = fx.view.gcn_coef;
  const double simd_cached_s =
      time_best([&] { compiler::run_kernel(fx.spec, args); });

  // Unfused op-at-a-time pipeline on the same graph and features.
  baseline::CooSnapshot coo = baseline::make_coo(fx.n, fx.edges);
  Tensor xt = Tensor::from_vector(fx.x, {fx.n, F});
  double unfused_s;
  {
    NoGradGuard ng;
    unfused_s = time_best(
        [&] {
          Tensor coef = baseline::gcn_norm(coo);
          Tensor msg = baseline::gather_messages(xt, coo);
          msg = baseline::scale_messages(msg, coef);
          Tensor o = ops::add(baseline::scatter_add(msg, coo),
                              baseline::self_loop_contribution(xt, coo));
          benchmark::DoNotOptimize(o.data());
        },
        3);
  }

  std::ofstream f(path);
  if (!f) {
    std::cerr << "cannot write " << path << "\n";
    return 1;
  }
  f << "{\n"
    << "  \"bench\": \"micro_kernels\",\n"
    << "  \"device\": \"" << core::native_backend().device_info() << "\",\n"
    << "  \"simd\": \"" << simd::active_arch() << "\",\n"
    << "  \"threads\": 1,\n"
    << "  \"config\": {\"num_nodes\": " << n << ", \"num_edges\": " << m
    << ", \"feature_size\": " << F
    << ", \"program\": \"gcn_norm_sum_self\"},\n"
    << "  \"kernels\": {\n"
    << "    \"scalar_reference_s\": " << scalar_s << ",\n"
    << "    \"simd_inline_s\": " << simd_inline_s << ",\n"
    << "    \"simd_cached_s\": " << simd_cached_s << ",\n"
    << "    \"unfused_s\": " << unfused_s << "\n"
    << "  },\n"
    << "  \"speedups\": {\n"
    << "    \"simd_vs_scalar\": " << scalar_s / simd_inline_s << ",\n"
    << "    \"simd_cached_vs_scalar\": " << scalar_s / simd_cached_s << ",\n"
    << "    \"coef_cache_vs_inline\": " << simd_inline_s / simd_cached_s
    << ",\n"
    << "    \"fused_vs_unfused\": " << unfused_s / simd_cached_s << "\n"
    << "  },\n"
    << "  \"note\": \"scalar_reference_s is the pre-engine code path "
       "rebuilt in this binary, so it shares the huge-page allocator; "
       "against the pre-engine binary itself the engine measures ~3x "
       "(see docs/internals.md, kernel engine section)\"\n"
    << "}\n";
  std::cout << "micro_kernels ablation (" << simd::active_arch()
            << ", 1 thread, n=" << n << " m=" << m << " F=" << F << "):\n"
            << "  scalar reference " << scalar_s * 1e3 << " ms\n"
            << "  simd inline      " << simd_inline_s * 1e3 << " ms  ("
            << scalar_s / simd_inline_s << "x)\n"
            << "  simd cached      " << simd_cached_s * 1e3 << " ms  ("
            << scalar_s / simd_cached_s << "x)\n"
            << "  unfused pipeline " << unfused_s * 1e3 << " ms\n"
            << "  wrote " << path << "\n";
  return 0;
}

// ---- --fusion-json-out ablation --------------------------------------------

// One model's fusion-on vs fusion-off epoch measurement.
struct FusionModelResult {
  std::string model, dataset;
  double on_s = 0.0, off_s = 0.0;
  double loss_on = 0.0, loss_off = 0.0;
  uint64_t tape_ops_on = 0, tape_ops_off = 0;
  uint64_t tape_bytes_on = 0, tape_bytes_off = 0;
  uint64_t fused_ops_on = 0, fused_bytes_on = 0;
  uint64_t steady_cache_misses = 0;  // must be 0: zero steady-state compiles
  uint64_t cache_hits = 0;
  double speedup() const { return on_s > 0.0 ? off_s / on_s : 0.0; }
};

// Train `epochs` measured epochs with fusion forced on vs off. The two
// trainers run interleaved (one on-epoch, one off-epoch, back to back) and
// each mode reports its BEST epoch — ambient machine load hits both modes
// alike and the min sheds the noise spikes.
template <typename MakeModel>
FusionModelResult measure_fusion_model(
    const char* model_name, const datasets::StaticTemporalDataset& ds,
    const MakeModel& make_model, uint32_t epochs) {
  FusionModelResult r;
  r.model = model_name;
  r.dataset = ds.name;
  core::TrainConfig cfg;
  cfg.epochs = 1;
  cfg.sequence_length = 8;
  cfg.task = core::Task::kNodeRegression;

  // Identical seeds: the two runs train the same model, so their losses
  // must stay bitwise equal (the fusion parity contract, end to end).
  Rng rng_on(0xBEEF), rng_off(0xBEEF);
  StaticTemporalGraph graph_on(ds.num_nodes, ds.edges, ds.num_timestamps);
  StaticTemporalGraph graph_off(ds.num_nodes, ds.edges, ds.num_timestamps);
  auto model_on = make_model(rng_on);
  auto model_off = make_model(rng_off);
  core::STGraphTrainer tr_on(graph_on, *model_on, ds.signal, cfg);
  core::STGraphTrainer tr_off(graph_off, *model_off, ds.signal, cfg);

  auto on_epoch = [&] {
    compiler::fusion::set_fusion_enabled(true);
    return tr_on.train_epoch();
  };
  auto off_epoch = [&] {
    compiler::fusion::set_fusion_enabled(false);
    return tr_off.train_epoch();
  };
  on_epoch();  // warmup: compiles + caches every fused program
  off_epoch();
  compiler::fusion::reset_fusion_stats();
  r.on_s = r.off_s = 1e100;
  for (uint32_t e = 0; e < epochs; ++e) {
    const core::EpochStats on = on_epoch();
    const core::EpochStats off = off_epoch();
    r.on_s = std::min(r.on_s, on.seconds);
    r.off_s = std::min(r.off_s, off.seconds);
    r.loss_on = on.loss;
    r.loss_off = off.loss;
    r.tape_ops_on = on.tape_op_count;
    r.tape_bytes_on = on.tape_bytes;
    r.fused_ops_on = on.fused_op_count;
    r.fused_bytes_on = on.fused_bytes;
    r.tape_ops_off = off.tape_op_count;
    r.tape_bytes_off = off.tape_bytes;
  }
  const compiler::fusion::FusionStats fs = compiler::fusion::fusion_stats();
  r.steady_cache_misses = fs.cache_misses;
  r.cache_hits = fs.cache_hits;
  compiler::fusion::set_fusion_enabled(true);
  return r;
}

int run_fusion_ablation(const std::string& path) {
  // ---- fused-epilogue micro: bias grafted onto the aggregation writeback
  // vs a second read-modify-write pass over the output. Bitwise equality is
  // part of the contract (the add sees the same two floats either way).
  const int64_t F = 32;
  Fixture fx(50000, 400000, F);
  Rng brng(23);
  std::vector<float> bias(F);
  for (auto& v : bias) v = brng.normal();
  std::vector<float> out_fused(fx.x.size()), out_unfused(fx.x.size());
  compiler::KernelArgs args;
  args.view = fx.view.in_view;
  args.in_degrees = fx.view.in_degrees;
  args.gcn_coef = fx.view.gcn_coef;
  const float* inputs[1] = {fx.x.data()};
  args.inputs = inputs;
  args.self_features = fx.x.data();
  args.num_feats = static_cast<uint32_t>(F);
  args.producer_is_col = true;

  auto run_unfused = [&] {
    args.out = out_unfused.data();
    args.epilogue_bias = nullptr;
    compiler::run_kernel(fx.spec, args);
    float* o = out_unfused.data();
    for (uint32_t v = 0; v < fx.n; ++v)
      for (int64_t f = 0; f < F; ++f) o[v * F + f] += bias[f];
  };
  auto run_fused = [&] {
    args.out = out_fused.data();
    args.epilogue_bias = bias.data();
    compiler::run_kernel(fx.spec, args);
  };
  run_unfused();  // warm
  run_fused();
  const bool epilogue_bitwise_equal =
      std::memcmp(out_fused.data(), out_unfused.data(),
                  out_fused.size() * sizeof(float)) == 0;
  const double epi_unfused_s = time_best(run_unfused);
  const double epi_fused_s = time_best(run_fused);

  // ---- end-to-end model epochs, fusion on vs off ---------------------------
  datasets::StaticLoadOptions so;
  so.scale = 0.25;
  so.num_timestamps = 24;
  const datasets::StaticTemporalDataset wiki = datasets::load_wikimath(so);
  const datasets::StaticTemporalDataset pox = datasets::load_chickenpox(so);
  const uint32_t epochs = 3;
  const FusionModelResult tgcn = measure_fusion_model(
      "TGCN", wiki,
      [&](Rng& rng) {
        return std::make_unique<nn::TGCNRegressor>(wiki.signal.feature_size(),
                                                   16, rng);
      },
      epochs);
  const FusionModelResult gru = measure_fusion_model(
      "GConvGRU", pox,
      [&](Rng& rng) {
        return std::make_unique<nn::GConvGRURegressor>(
            pox.signal.feature_size(), 16, 2, rng);
      },
      epochs);

  std::ofstream f(path);
  if (!f) {
    std::cerr << "cannot write " << path << "\n";
    return 1;
  }
  auto model_json = [](const FusionModelResult& r) {
    std::ostringstream os;
    os << "    {\"model\": \"" << r.model << "\", \"dataset\": \"" << r.dataset
       << "\", \"fusion_on_s\": " << r.on_s
       << ", \"fusion_off_s\": " << r.off_s
       << ", \"speedup\": " << r.speedup()
       << ", \"loss_bitwise_equal\": "
       << (r.loss_on == r.loss_off ? "true" : "false")
       << ", \"tape_ops_on\": " << r.tape_ops_on
       << ", \"tape_ops_off\": " << r.tape_ops_off
       << ", \"tape_bytes_on\": " << r.tape_bytes_on
       << ", \"tape_bytes_off\": " << r.tape_bytes_off
       << ", \"fused_ops_on\": " << r.fused_ops_on
       << ", \"fused_bytes_on\": " << r.fused_bytes_on
       << ", \"steady_state_cache_misses\": " << r.steady_cache_misses
       << ", \"cache_hits\": " << r.cache_hits << "}";
    return os.str();
  };
  f << "{\n"
    << "  \"bench\": \"fusion\",\n"
    << "  \"device\": \"" << core::native_backend().device_info() << "\",\n"
    << "  \"simd\": \"" << simd::active_arch() << "\",\n"
    << "  \"epilogue\": {\"num_nodes\": " << fx.n
    << ", \"feature_size\": " << F << ", \"fused_s\": " << epi_fused_s
    << ", \"unfused_s\": " << epi_unfused_s
    << ", \"speedup\": " << epi_unfused_s / epi_fused_s
    << ", \"bitwise_equal\": " << (epilogue_bitwise_equal ? "true" : "false")
    << "},\n"
    << "  \"models\": [\n"
    << model_json(tgcn) << ",\n"
    << model_json(gru) << "\n  ]\n}\n";
  std::cout << "fusion ablation:\n"
            << "  epilogue fused " << epi_fused_s * 1e3 << " ms vs unfused "
            << epi_unfused_s * 1e3 << " ms ("
            << epi_unfused_s / epi_fused_s
            << "x), bitwise equal: " << epilogue_bitwise_equal << "\n"
            << "  TGCN epoch: on " << tgcn.on_s * 1e3 << " ms, off "
            << tgcn.off_s * 1e3 << " ms (" << tgcn.speedup()
            << "x), tape ops " << tgcn.tape_ops_off << " -> "
            << tgcn.tape_ops_on << ", steady misses "
            << tgcn.steady_cache_misses << "\n"
            << "  GConvGRU epoch: on " << gru.on_s * 1e3 << " ms, off "
            << gru.off_s * 1e3 << " ms (" << gru.speedup()
            << "x), tape ops " << gru.tape_ops_off << " -> "
            << gru.tape_ops_on << ", steady misses "
            << gru.steady_cache_misses << "\n"
            << "  wrote " << path << "\n";
  return (epilogue_bitwise_equal && tgcn.steady_cache_misses == 0 &&
          gru.steady_cache_misses == 0)
             ? 0
             : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_out, fusion_json_out;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json-out=", 0) == 0) json_out = arg.substr(11);
    if (arg.rfind("--fusion-json-out=", 0) == 0)
      fusion_json_out = arg.substr(18);
  }
  if (!fusion_json_out.empty()) {
    const int rc = run_fusion_ablation(fusion_json_out);
    if (rc != 0 || json_out.empty()) return rc;
  }
  if (!json_out.empty()) return run_json_ablation(json_out);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
