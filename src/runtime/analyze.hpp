// Lock-order and blocking-hazard analyzer (the concurrency half of the
// correctness tooling; the structural half is src/verify/). Armed by
// STGRAPH_DEADLOCK=1 — disarmed (the default) every hook below is one
// relaxed atomic load and a predicted-not-taken branch, so the Mutex
// wrappers in runtime/mutex.hpp stay behaviorally identical to the plain
// zero-overhead wrappers on the hot path.
//
// Armed, the analyzer watches every acquisition made through the annotated
// lock types (Mutex / MutexLock / MutexTimedLock / ConditionVariable):
//
//   * each Mutex registers under its SITE LABEL (the constructor argument,
//     e.g. "serve::Server::exec_mu_") — the analysis is per program
//     location, not per instance, so one run over any schedule covers
//     every object of that class;
//   * a per-thread HELD-LOCK SET tracks what the thread currently holds,
//     with the acquisition backtrace captured per entry;
//   * a global ACQUISITION-ORDER GRAPH gains an edge site(A) -> site(B)
//     the first time any thread blocks on B while holding A. Edges are
//     recorded BEFORE the acquisition blocks, so a schedule that is about
//     to wedge still produces its report. The first edge that closes a
//     cycle is a potential deadlock: the report carries the full cycle,
//     with both acquisition stacks (the stack that took the held lock and
//     the stack attempting the new one) and the site labels per edge.
//     Non-wedging acquisitions — try_lock() and the deadline-bounded
//     try_lock_for() behind MutexTimedLock — cannot complete a deadlock
//     (they give up instead of blocking), so they enter the held set but
//     create no edges; locks they hold still order later blocking
//     acquisitions.
//   * a BLOCKING-HAZARD CHECKER flags operations that can park the thread
//     indefinitely while it holds any Mutex: condition-variable waits
//     holding a second lock, epoll_wait, file I/O (WAL, checkpoint and
//     container readers/writers), and thread joins. Sites where blocking
//     under a lock is the design (the WAL append under exec_mu_ IS the
//     ingest commit point) annotate the scope with STG_BLOCKING_OK("why")
//     and are exempt; everything else is reported with the held sites and
//     the blocking stack.
//
// Reports surface three ways: programmatically (cycles() / hazards() /
// as_report(), which feeds the verify::Report plumbing that stgraph_check
// and the tests share), as a formatted dump (format_report()), and — when
// armed via the environment — through an atexit hook that prints the
// report and fails the process, which is what makes the
// STGRAPH_DEADLOCK=1 ctest variants and chaos/smoke runs self-checking.
//
// The analyzer's own synchronization deliberately uses std::mutex (not
// stgraph::Mutex): its locks must be invisible to itself and to the
// -Wthread-safety pass, and it may run inside any hook.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "verify/report.hpp"

namespace stgraph::analyze {

namespace detail {
extern std::atomic<bool> g_armed;
}  // namespace detail

/// True when the analyzer is recording (STGRAPH_DEADLOCK=1 or arm(true)).
/// The single check every disarmed hook pays.
inline bool armed() {
  return detail::g_armed.load(std::memory_order_relaxed);
}

// ---- hooks wired into runtime/mutex.hpp (call only when armed()) ---------

/// A blocking acquisition is about to start: record order-graph edges from
/// every held lock to `site` and run cycle detection on new edges. Called
/// BEFORE the native lock so an imminent deadlock still reports.
void on_lock_attempt(const void* m, const char* site);
/// The acquisition succeeded: push the held-set entry. `blocking` is false
/// for try_lock / try_lock_for successes (held, but never edge sources of
/// their own acquisition).
void on_locked(const void* m, const char* site, bool blocking);
/// The lock is being released: pop the held-set entry (tolerates entries
/// acquired before arming).
void on_unlocked(const void* m);
/// Instance going away: drop it from the instance registry so a reused
/// address can never inherit a stale site.
void on_mutex_destroyed(const void* m);
/// A condition wait on `waited` is starting: every OTHER held lock is a
/// blocking hazard (`what` is "cv-wait" or "cv-wait-for").
void on_cv_wait(const void* waited, const char* what);
/// An operation that can block indefinitely (`what` names it: "epoll_wait",
/// "file-io(wal)", "thread-join", ...) is starting: a hazard if any lock is
/// held and no STG_BLOCKING_OK scope is active.
void on_blocking_call(const char* what);

/// RAII allowlist scope for deliberate blocking-under-lock (use the
/// STG_BLOCKING_OK macro, which names the instance for you). The reason
/// string is part of the annotation contract: it documents WHY holding the
/// lock across the blocking call is correct at this site.
class BlockingOkScope {
 public:
  explicit BlockingOkScope(const char* reason);
  ~BlockingOkScope();
  BlockingOkScope(const BlockingOkScope&) = delete;
  BlockingOkScope& operator=(const BlockingOkScope&) = delete;
};

// ---- findings -------------------------------------------------------------

/// One edge of a reported lock-order cycle.
struct CycleEdge {
  std::string from_site;      ///< label of the lock already held
  std::string to_site;        ///< label of the lock being acquired
  uint64_t thread_id = 0;     ///< thread that recorded the edge
  std::string holder_stack;   ///< backtrace that acquired from_site
  std::string acquirer_stack; ///< backtrace attempting to_site
};

/// A cycle in the acquisition-order graph — a potential deadlock. Reported
/// once per distinct site set.
struct LockCycle {
  std::vector<CycleEdge> edges;  ///< in cycle order; edges.back() closed it
  std::string to_string() const;
};

/// A blocking operation performed while holding locks, outside any
/// STG_BLOCKING_OK scope. Reported once per (operation, innermost site).
struct BlockingHazard {
  std::string what;                     ///< which blocking operation
  std::vector<std::string> held_sites;  ///< outermost-first
  std::string stack;                    ///< backtrace of the blocking call
  std::string to_string() const;
};

uint64_t cycle_count();
uint64_t hazard_count();
std::vector<LockCycle> cycles();
std::vector<BlockingHazard> hazards();

/// Everything found so far, formatted for humans (the atexit dump).
std::string format_report();
/// The same findings as a verify::Report (checkers "analyze.lock-order"
/// and "analyze.blocking-hazard") so tools that already gate on the
/// structural analyzer — stgraph_check, the test plumbing — fold the
/// concurrency findings in unchanged.
verify::Report as_report();

/// Arm / disarm programmatically (tests; the environment arms once at
/// startup). Arming mid-process only tracks locks acquired from here on.
void arm(bool on);
/// Drop all recorded state: order graph, instance registry, findings.
/// Test isolation only — never call while other threads hold tracked locks
/// you still care about.
void reset();

/// Scoped arm + reset for seeded tests: arms on construction, and on
/// destruction clears recorded state and restores the previous armed
/// state, so a deliberately seeded inversion never leaks into the
/// process-exit enforcement.
class ScopedArm {
 public:
  ScopedArm() : prev_(armed()) { arm(true); }
  ~ScopedArm() {
    reset();
    arm(prev_);
  }
  ScopedArm(const ScopedArm&) = delete;
  ScopedArm& operator=(const ScopedArm&) = delete;

 private:
  bool prev_;
};

}  // namespace stgraph::analyze

// Annotation macro for deliberate blocking-under-lock scopes. Expands to a
// uniquely named RAII object; the reason documents the design decision at
// the site and is required.
#define STG_ANALYZE_CONCAT2(a, b) a##b
#define STG_ANALYZE_CONCAT(a, b) STG_ANALYZE_CONCAT2(a, b)
#define STG_BLOCKING_OK(reason)                   \
  ::stgraph::analyze::BlockingOkScope STG_ANALYZE_CONCAT( \
      stg_blocking_ok_scope_, __COUNTER__)(reason)
