#!/bin/sh
# Final validation sweep: full test suite + every bench binary.
#
#   ./run_all.sh            default sweep (tests + benches)
#   ./run_all.sh sanitize   tier-1 suite under ASan/UBSan with the
#                           failpoint machinery compiled in and active
#                           (fault-injection tests arm their own
#                           failpoints; this shakes out UB on the
#                           error/rollback paths)
#   ./run_all.sh serve-smoke
#                           serving smoke test: checkpoint a tiny model,
#                           serve it in-process (concurrent predict
#                           clients + streaming delta ingestion), emit
#                           BENCH_serve.json with p50/p99 latency and
#                           ingest throughput
#   ./run_all.sh bench      graph-update benches only: bench_fig9 (GNN/
#                           update time split with the per-phase counters
#                           and the incremental-vs-full view-maintenance
#                           ablation, emitted as BENCH_fig9.json) +
#                           bench_micro_gpma + the kernel-engine ablation
#                           (scalar vs SIMD, coef cache on/off, fused vs
#                           unfused, emitted as BENCH_kernels.json)
cd /root/repo

if [ "$1" = "bench" ]; then
  cmake -B build -S . || exit 1
  cmake --build build -j "$(nproc)" --target bench_fig9 bench_micro_gpma \
    bench_micro_kernels || exit 1
  ./build/bench/bench_fig9 --json-out=/root/repo/BENCH_fig9.json || exit 1
  ./build/bench/bench_micro_gpma || exit 1
  ./build/bench/bench_micro_kernels \
    --json-out=/root/repo/BENCH_kernels.json || exit 1
  exit 0
fi

if [ "$1" = "serve-smoke" ]; then
  cmake -B build -S . || exit 1
  cmake --build build -j "$(nproc)" --target bench_serve || exit 1
  ./build/bench/bench_serve --out=/root/repo/BENCH_serve.json \
    --requests=1000 --deltas=50 --threads=4 || exit 1
  cat /root/repo/BENCH_serve.json
  exit 0
fi

if [ "$1" = "sanitize" ]; then
  cmake -B build-asan -S . \
    -DSTGRAPH_SANITIZE=address,undefined \
    -DSTGRAPH_BUILD_BENCH=OFF \
    -DSTGRAPH_BUILD_EXAMPLES=OFF || exit 1
  cmake --build build-asan -j "$(nproc)" || exit 1
  UBSAN_OPTIONS=halt_on_error=1 \
    ctest --test-dir build-asan --output-on-failure 2>&1 \
    | tee /root/repo/test_output_asan.txt
  exit $?
fi

ctest --test-dir build 2>&1 | tee /root/repo/test_output.txt > /dev/null
for b in build/bench/*; do
  if [ -x "$b" ] && [ -f "$b" ]; then
    echo "===== $(basename "$b") ====="
    "$b"
    echo
  fi
done 2>&1 | tee /root/repo/bench_output.txt > /dev/null
echo ALL_DONE > /root/repo/.run_all_done
