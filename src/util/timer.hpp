// Wall-clock timing helpers used by benches and the executor's phase
// instrumentation (Figure 9 needs a GNN-time vs graph-update-time split).
#pragma once

#include <chrono>
#include <cstdint>

namespace stgraph {

/// Simple monotonic wall-clock timer.
class Timer {
 public:
  Timer() { reset(); }
  void reset() { start_ = clock::now(); }
  /// Seconds elapsed since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }
  double millis() const { return seconds() * 1e3; }
  double micros() const { return seconds() * 1e6; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Accumulates time across many start/stop intervals; used to attribute
/// executor time to phases (graph update vs GNN processing).
class PhaseTimer {
 public:
  void start() { timer_.reset(); running_ = true; }
  void stop() {
    if (running_) {
      total_ += timer_.seconds();
      ++intervals_;
      running_ = false;
    }
  }
  void reset() { total_ = 0; intervals_ = 0; running_ = false; }
  double total_seconds() const { return total_; }
  uint64_t intervals() const { return intervals_; }

 private:
  Timer timer_;
  double total_ = 0;
  uint64_t intervals_ = 0;
  bool running_ = false;
};

/// RAII guard that charges a scope to a PhaseTimer.
class PhaseScope {
 public:
  explicit PhaseScope(PhaseTimer& t) : t_(t) { t_.start(); }
  ~PhaseScope() { t_.stop(); }
  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  PhaseTimer& t_;
};

}  // namespace stgraph
