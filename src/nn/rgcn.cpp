#include "nn/rgcn.hpp"

#include "tensor/ops.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace stgraph::nn {

RelationAssignment::RelationAssignment(std::vector<uint8_t> relation_of,
                                       int num_relations)
    : relation_of_(std::move(relation_of)), num_relations_(num_relations) {
  STG_CHECK(num_relations_ >= 1, "need at least one relation");
  for (std::size_t e = 0; e < relation_of_.size(); ++e) {
    STG_CHECK(relation_of_[e] < num_relations_, "edge ", e,
              " has invalid relation ", int{relation_of_[e]});
  }
}

void RelationAssignment::materialize(const float* edge_weights) {
  masks_.assign(num_relations_,
                std::vector<float>(relation_of_.size(), 0.0f));
  for (std::size_t e = 0; e < relation_of_.size(); ++e) {
    masks_[relation_of_[e]][e] = edge_weights ? edge_weights[e] : 1.0f;
  }
}

const std::vector<float>& RelationAssignment::mask(int relation) const {
  STG_CHECK(!masks_.empty(), "RelationAssignment::materialize() not called");
  STG_CHECK(relation >= 0 && relation < num_relations_, "relation ", relation,
            " out of range ", num_relations_);
  return masks_[static_cast<std::size_t>(relation)];
}

RelationalGCNConv::RelationalGCNConv(int64_t in_features, int64_t out_features,
                                     int num_relations, Rng& rng)
    : in_(in_features), out_(out_features),
      self_lin_(in_features, out_features, rng, /*bias=*/true) {
  STG_CHECK(num_relations >= 1, "need at least one relation");
  rel_convs_.reserve(num_relations);
  for (int r = 0; r < num_relations; ++r) {
    rel_convs_.push_back(std::make_unique<SeastarGCNConv>(
        in_features, out_features, rng, /*bias=*/false));
    register_module("rel" + std::to_string(r), rel_convs_[r].get());
  }
  register_module("self", &self_lin_);
}

Tensor RelationalGCNConv::forward(core::TemporalExecutor& exec,
                                  const Tensor& x,
                                  const RelationAssignment& relations) const {
  STG_CHECK(relations.num_relations() == static_cast<int>(rel_convs_.size()),
            "assignment has ", relations.num_relations(), " relations, layer ",
            rel_convs_.size());
  STG_CHECK(relations.num_edges() == exec.forward_view().num_edges,
            "relation assignment covers ", relations.num_edges(),
            " edges, snapshot has ", exec.forward_view().num_edges);
  // Root/self transform plus one masked aggregation per relation. Each
  // relation conv also contributes its built-in gcn_norm self loop under
  // its own W_r — the "self loop belongs to every relation" convention.
  Tensor out = self_lin_.forward(x);
  for (std::size_t r = 0; r < rel_convs_.size(); ++r) {
    const std::vector<float>& mask = relations.mask(static_cast<int>(r));
    out = ops::add(out, rel_convs_[r]->forward(exec, x, mask.data()));
  }
  return out;
}

}  // namespace stgraph::nn
