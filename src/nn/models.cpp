#include "nn/models.hpp"

#include "tensor/ops.hpp"

namespace stgraph::nn {

TGCNRegressor::TGCNRegressor(int64_t in_features, int64_t hidden, Rng& rng)
    : tgcn_(in_features, hidden, rng), head_(hidden, 1, rng) {
  register_module("tgcn", &tgcn_);
  register_module("head", &head_);
}

std::pair<Tensor, Tensor> TGCNRegressor::step(core::TemporalExecutor& exec,
                                              const Tensor& x, const Tensor& h,
                                              const float* edge_weights) {
  Tensor h_next = tgcn_.forward(exec, x, h, edge_weights);
  Tensor y = head_.forward(ops::relu(h_next));
  return {y, h_next};
}

TGCNEncoder::TGCNEncoder(int64_t in_features, int64_t hidden, Rng& rng)
    : tgcn_(in_features, hidden, rng) {
  register_module("tgcn", &tgcn_);
}

std::pair<Tensor, Tensor> TGCNEncoder::step(core::TemporalExecutor& exec,
                                            const Tensor& x, const Tensor& h,
                                            const float* edge_weights) {
  Tensor h_next = tgcn_.forward(exec, x, h, edge_weights);
  return {h_next, h_next};
}

Tensor link_logits(const Tensor& h, const std::vector<uint32_t>& src,
                   const std::vector<uint32_t>& dst) {
  Tensor hu = ops::gather_rows(h, src);
  Tensor hv = ops::gather_rows(h, dst);
  return ops::row_sum(ops::mul(hu, hv));
}

}  // namespace stgraph::nn
