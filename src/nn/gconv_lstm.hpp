// GConvLSTM — the LSTM counterpart of GConvGRU (Seo et al.; also in
// PyG-T's layer zoo). Demonstrates swapping the *temporal structure*
// while keeping the spatial building block (paper §V-A1): the same
// ChebConv-lite convolution drives LSTM gates with a separate cell state.
//
//   I  = σ(conv_xi(X) + conv_hi(H))        input gate
//   Fg = σ(conv_xf(X) + conv_hf(H))        forget gate
//   C' = Fg⊙C + I⊙tanh(conv_xc(X) + conv_hc(H))
//   O  = σ(conv_xo(X) + conv_ho(H))        output gate
//   H' = O⊙tanh(C')
//
// The recurrent state is (H, C); TemporalModel carries a single tensor,
// so GConvLSTMRegressor packs the pair as [N, 2·hidden] (H ‖ C).
#pragma once

#include "nn/gconv_gru.hpp"

namespace stgraph::nn {

class GConvLSTM : public Module {
 public:
  GConvLSTM(int64_t in_features, int64_t out_features, int k, Rng& rng);

  /// One step: (h, c) -> (h', c'). Undefined handles mean zero state.
  std::pair<Tensor, Tensor> forward(core::TemporalExecutor& exec,
                                    const Tensor& x, const Tensor& h,
                                    const Tensor& c,
                                    const float* edge_weights = nullptr) const;
  Tensor initial_state(int64_t num_nodes) const;

  int64_t out_features() const { return out_; }

 private:
  int64_t in_, out_;
  ChebConvLite conv_xi_, conv_hi_;
  ChebConvLite conv_xf_, conv_hf_;
  ChebConvLite conv_xc_, conv_hc_;
  ChebConvLite conv_xo_, conv_ho_;
};

/// Node-regression model over GConvLSTM with packed [H ‖ C] state.
class GConvLSTMRegressor final : public TemporalModel {
 public:
  GConvLSTMRegressor(int64_t in_features, int64_t hidden, int k, Rng& rng);
  std::pair<Tensor, Tensor> step(core::TemporalExecutor& exec, const Tensor& x,
                                 const Tensor& state,
                                 const float* edge_weights) override;
  Tensor initial_state(int64_t num_nodes) const override;

 private:
  int64_t hidden_;
  GConvLSTM lstm_;
  Linear head_;
};

}  // namespace stgraph::nn
