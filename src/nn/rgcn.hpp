// RelationalGCNConv — an RGCN-lite layer (Schlichtkrull et al., cited by
// the paper among PyG-T's spatial building blocks) for graphs whose edges
// carry a relation type:
//
//   out[v] = W_self·x[v] + b + Σ_r [ Σ_{u →_r v} norm(u,v)·(X·W_r)[u]
//                                    + gcn_norm(v,v)·(X·W_r)[v] ]
//
// Composed entirely from the public kernel machinery: each relation r is
// one weighted-aggregation launch whose per-edge weight array is the 0/1
// relation mask (times optional user weights), indexed by the snapshot's
// shared edge labels. No new kernels, no graph-abstraction changes —
// the same recipe a downstream user would follow to add a typed layer.
//
// Lifetime: like all per-edge weight arrays, the materialized masks are
// referenced by the backward kernels — keep the RelationAssignment alive
// until the sequence's backward pass has run (it is per-snapshot data,
// naturally owned next to the signal).
#pragma once

#include <memory>
#include <vector>

#include "nn/gcn.hpp"
#include "nn/linear.hpp"

namespace stgraph::nn {

/// Per-edge relation assignment for a snapshot: relation_of[eid] ∈
/// [0, num_relations). Rebuild per snapshot when edge labels change
/// (DTDGs relabel per timestamp).
class RelationAssignment {
 public:
  RelationAssignment(std::vector<uint8_t> relation_of, int num_relations);

  int num_relations() const { return num_relations_; }
  std::size_t num_edges() const { return relation_of_.size(); }
  uint8_t relation_of(std::size_t eid) const { return relation_of_[eid]; }

  /// Materialize the per-relation masks (0/1 × optional user weights).
  /// Must be called before forward(); masks stay owned by this object.
  void materialize(const float* edge_weights = nullptr);
  const std::vector<float>& mask(int relation) const;

 private:
  std::vector<uint8_t> relation_of_;
  int num_relations_;
  std::vector<std::vector<float>> masks_;
};

class RelationalGCNConv : public Module {
 public:
  RelationalGCNConv(int64_t in_features, int64_t out_features,
                    int num_relations, Rng& rng);

  /// Aggregate x over the executor's current snapshot. `relations` must be
  /// materialized and cover the snapshot's edge labels.
  Tensor forward(core::TemporalExecutor& exec, const Tensor& x,
                 const RelationAssignment& relations) const;

  int num_relations() const { return static_cast<int>(rel_convs_.size()); }

 private:
  int64_t in_, out_;
  // One bias-free weighted conv per relation + the root/self transform.
  std::vector<std::unique_ptr<SeastarGCNConv>> rel_convs_;
  Linear self_lin_;
};

}  // namespace stgraph::nn
