// Tests for the extended layer APIs (ChebConvLite, GConvGRU) and model
// composition — the paper's §V-A1 claim that new temporal models are
// built by swapping building blocks.
#include <gtest/gtest.h>

#include <set>

#include "core/trainer.hpp"
#include "datasets/synthetic.hpp"
#include "graph/static_graph.hpp"
#include "nn/a3tgcn.hpp"
#include "nn/gcn_stack.hpp"
#include "nn/gconv_gru.hpp"
#include "nn/gconv_lstm.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"

namespace stgraph {
namespace {

EdgeList random_edges(uint32_t n, int count, uint64_t seed) {
  Rng rng(seed);
  EdgeList edges;
  std::set<std::pair<uint32_t, uint32_t>> seen;
  for (int i = 0; i < count * 4 && static_cast<int>(edges.size()) < count; ++i) {
    uint32_t s = rng.next_below(n), d = rng.next_below(n);
    if (s == d || !seen.insert({s, d}).second) continue;
    edges.emplace_back(s, d);
  }
  return edges;
}

TEST(ChebConvLite, OrderOneIsPureLinear) {
  Rng rng(1);
  const uint32_t n = 10;
  nn::ChebConvLite conv(3, 4, /*k=*/1, rng);
  StaticTemporalGraph graph(n, random_edges(n, 30, 2), 1);
  core::TemporalExecutor exec(graph);
  exec.begin_forward_step(0);
  NoGradGuard ng;
  Tensor x = Tensor::randn({n, 3}, rng);
  Tensor y = conv.forward(exec, x);
  EXPECT_EQ(y.shape(), (Shape{n, 4}));
  // K=1 ignores the graph entirely: permuting edges must not matter.
  StaticTemporalGraph other(n, random_edges(n, 30, 99), 1);
  core::TemporalExecutor exec2(other);
  exec2.begin_forward_step(0);
  Tensor y2 = conv.forward(exec2, x);
  for (int64_t i = 0; i < y.numel(); ++i) EXPECT_FLOAT_EQ(y.at(i), y2.at(i));
}

TEST(ChebConvLite, OrderTwoUsesTheGraph) {
  Rng rng(3);
  const uint32_t n = 10;
  nn::ChebConvLite conv(3, 4, /*k=*/2, rng);
  StaticTemporalGraph g1(n, random_edges(n, 30, 4), 1);
  StaticTemporalGraph g2(n, random_edges(n, 30, 77), 1);
  core::TemporalExecutor e1(g1), e2(g2);
  e1.begin_forward_step(0);
  e2.begin_forward_step(0);
  NoGradGuard ng;
  Tensor x = Tensor::randn({n, 3}, rng);
  Tensor y1 = conv.forward(e1, x);
  Tensor y2 = conv.forward(e2, x);
  bool any_diff = false;
  for (int64_t i = 0; i < y1.numel(); ++i)
    any_diff = any_diff || std::abs(y1.at(i) - y2.at(i)) > 1e-6f;
  EXPECT_TRUE(any_diff);
}

TEST(ChebConvLite, RejectsUnsupportedOrder) {
  Rng rng(5);
  EXPECT_THROW(nn::ChebConvLite(3, 4, 3, rng), StgError);
  EXPECT_THROW(nn::ChebConvLite(3, 4, 0, rng), StgError);
}

class GConvGruOrder : public ::testing::TestWithParam<int> {};

TEST_P(GConvGruOrder, CellStepShapesAndGrads) {
  const int k = GetParam();
  Rng rng(7);
  const uint32_t n = 12;
  nn::GConvGRU gru(3, 5, k, rng);
  StaticTemporalGraph graph(n, random_edges(n, 40, 8), 3);
  core::TemporalExecutor exec(graph);

  Tensor x = Tensor::randn({n, 3}, rng, 1.0f, /*requires_grad=*/true);
  exec.begin_forward_step(0);
  Tensor h = gru.forward(exec, x, Tensor());
  EXPECT_EQ(h.shape(), (Shape{n, 5}));
  // Hidden values live in (-1, 1): convex blend of 0-state and tanh.
  for (int64_t i = 0; i < h.numel(); ++i) {
    EXPECT_GT(h.at(i), -1.0f);
    EXPECT_LT(h.at(i), 1.0f);
  }
  ops::sum(h).backward();
  EXPECT_TRUE(x.grad().defined());
  for (const auto& p : gru.parameters()) {
    EXPECT_TRUE(p.tensor.grad().defined()) << p.name;
  }
  exec.verify_drained();
}

INSTANTIATE_TEST_SUITE_P(Orders, GConvGruOrder, ::testing::Values(1, 2));

TEST(GConvGru, TrainsOnStaticTemporalData) {
  datasets::StaticLoadOptions o;
  o.num_timestamps = 20;
  o.feature_size = 4;
  auto ds = datasets::load_chickenpox(o);
  StaticTemporalGraph graph(ds.num_nodes, ds.edges, ds.num_timestamps);
  Rng rng(11);
  nn::GConvGRURegressor model(o.feature_size, 8, /*k=*/2, rng);
  core::TrainConfig cfg;
  cfg.epochs = 6;
  cfg.sequence_length = 5;
  cfg.task = core::Task::kNodeRegression;
  core::STGraphTrainer trainer(graph, model, ds.signal, cfg);
  auto stats = trainer.train();
  EXPECT_LT(stats.back().loss, stats.front().loss);
}

TEST(GConvGru, ParameterCountMatchesFormula) {
  Rng rng(13);
  nn::GConvGRU gru(4, 8, /*k=*/2, rng);
  // Per gate: x-conv (4·8 lin + 8 bias + 4·8 hop) + h-conv (8·8 lin + 8·8
  // hop, no bias). Three gates.
  const int64_t per_gate = (4 * 8 + 8 + 4 * 8) + (8 * 8 + 8 * 8);
  EXPECT_EQ(gru.parameter_count(), 3 * per_gate);
}

// Regression test: a parent eval()/train() must flip EVERY registered
// descendant (dropout and any mode-dependent layer reads the flag), and
// named_modules() must expose the full tree so the propagation is
// auditable from outside — serve::ModelSnapshot::install relies on this
// when freezing a model.
void expect_tree_mode(const nn::Module& root, bool training,
                      const std::string& label, std::size_t min_modules) {
  const auto mods = root.named_modules();
  ASSERT_GE(mods.size(), min_modules) << label;
  for (const auto& [path, m] : mods)
    EXPECT_EQ(m->is_training(), training)
        << label << ": module '" << path << "' did not follow the parent";
}

TEST(Module, EvalPropagatesIntoEveryRegisteredDescendant) {
  Rng rng(13);
  nn::GCNStack stack({4, 8, 8, 2}, rng, /*dropout=*/0.5f);
  nn::TGCNRegressor tgcn_reg(4, 8, rng);
  nn::TGCNEncoder tgcn_enc(4, 8, rng);
  nn::A3TGCN a3(4, 8, /*periods=*/3, rng);
  nn::GConvGRURegressor gru(4, 8, /*k=*/2, rng);
  nn::GConvLSTMRegressor lstm(4, 8, /*k=*/2, rng);

  const std::vector<std::pair<nn::Module*, const char*>> models = {
      {&stack, "GCNStack"},    {&tgcn_reg, "TGCNRegressor"},
      {&tgcn_enc, "TGCNEncoder"}, {&a3, "A3TGCN"},
      {&gru, "GConvGRURegressor"}, {&lstm, "GConvLSTMRegressor"}};
  for (const auto& [model, label] : models) {
    // Constructed in training mode, whole tree included.
    expect_tree_mode(*model, true, label, 2);
    model->eval();
    expect_tree_mode(*model, false, label, 2);
    model->train();
    expect_tree_mode(*model, true, label, 2);
  }
}

TEST(Module, NamedModulesReportsDottedPaths) {
  Rng rng(13);
  nn::TGCNRegressor model(4, 8, rng);
  const auto mods = model.named_modules();
  ASSERT_FALSE(mods.empty());
  EXPECT_EQ(mods.front().first, "");  // pre-order: the root itself first
  EXPECT_EQ(mods.front().second, &model);
  bool saw_nested = false;
  for (const auto& [path, m] : mods)
    saw_nested |= path.find('.') != std::string::npos;
  EXPECT_TRUE(saw_nested) << "TGCNRegressor has grandchildren (tgcn.conv_*)";
}

}  // namespace
}  // namespace stgraph
