#include "verify/validate.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "util/check.hpp"

namespace stgraph::verify {
namespace {

bool env_truthy(const char* v) {
  if (!v || !*v) return false;
  return std::strcmp(v, "0") != 0 && std::strcmp(v, "false") != 0 &&
         std::strcmp(v, "off") != 0;
}

std::atomic<int>& flag() {
  // -1 = unread, 0 = off, 1 = on. Atomic so serving threads and tests can
  // race the first read safely.
  static std::atomic<int> f{-1};
  return f;
}

}  // namespace

bool validation_enabled() {
  int v = flag().load(std::memory_order_relaxed);
  if (v < 0) {
    v = env_truthy(std::getenv("STGRAPH_VALIDATE")) ? 1 : 0;
    flag().store(v, std::memory_order_relaxed);
  }
  return v != 0;
}

void set_validation_enabled(bool on) {
  flag().store(on ? 1 : 0, std::memory_order_relaxed);
}

void require_ok(const Report& r, const std::string& where) {
  if (r.ok()) return;
  throw StgError("invariant validation failed in " + where + ": " +
                 r.to_string());
}

}  // namespace stgraph::verify
