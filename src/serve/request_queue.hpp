// Bounded, tenant-partitioned MPMC request queue for the serving runtime:
// many client (or network) threads push predict requests into per-tenant
// lanes; N replicated reader threads pop them in micro-batches assembled
// by weighted round-robin across the lanes. Each lane's bound turns
// overload into explicit per-tenant load shedding (push() reports kFull,
// the server sheds the request as queue_full) instead of unbounded memory
// growth — one noisy tenant fills its own lane, not the server.
//
// Completion model: a request resolves through its `done` callback,
// invoked EXACTLY ONCE from whichever thread finishes it (a reader thread
// on fulfilment, the submitting thread on admission shed, the stopping
// thread on drain). The blocking predict() API wraps a promise in the
// callback; the network front-end wraps a frame writer — the queue itself
// never blocks a thread per in-flight request.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <utility>
#include <vector>

#include "runtime/mutex.hpp"
#include "tensor/tensor.hpp"
#include "util/thread_annotations.hpp"

namespace stgraph::serve {

/// What a fulfilled predict request resolves to.
struct PredictResult {
  uint32_t timestamp = 0;   ///< graph time the forward pass ran at
  uint64_t version = 0;     ///< server state version (bumps per ingest/swap)
  bool stale = false;       ///< served from the last-good cached step while
                            ///< the circuit was open (bounded staleness)
  Tensor outputs;           ///< one row per requested node (all nodes if
                            ///< the request listed none)
  double queue_micros = 0;  ///< time spent waiting for the batcher
  double total_micros = 0;  ///< enqueue -> completion delivered
};

/// Exactly-once completion: `ep == nullptr` delivers the result; a
/// non-null `ep` carries the typed failure (ShedError / StgError).
using PredictCallback =
    std::function<void(std::exception_ptr ep, PredictResult&& result)>;

struct PredictRequest {
  std::vector<uint32_t> nodes;  ///< empty = all nodes
  uint16_t tenant = 0;          ///< wire-level tenant id
  std::size_t tenant_slot = 0;  ///< dense stats/queue lane index
  PredictCallback done;
  std::chrono::steady_clock::time_point enqueued;
  /// Absolute deadline; time_point::max() = none. Enforced at dequeue
  /// (expired requests shed without executing) and at completion.
  std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::time_point::max();
};

/// Resolve a request exactly once (no-op on a callback-less request, which
/// only ever exists in unit tests).
inline void complete_request(PredictRequest& req, PredictResult&& res) {
  if (req.done) {
    PredictCallback cb = std::move(req.done);
    req.done = nullptr;
    cb(nullptr, std::move(res));
  }
}
inline void fail_request(PredictRequest& req, const std::exception_ptr& ep) {
  if (req.done) {
    PredictCallback cb = std::move(req.done);
    req.done = nullptr;
    cb(ep, PredictResult{});
  }
}

/// Static description of one tenant lane.
struct TenantLane {
  uint16_t id = 0;           ///< tenant id requests carry on the wire
  uint32_t weight = 1;       ///< WRR share: max requests taken per visit
  std::size_t capacity = 0;  ///< per-lane bound; 0 = use the set default
};

class TenantQueueSet {
 public:
  enum class PushResult : uint8_t {
    kOk,
    kFull,    ///< lane at capacity — load shed (queue_full)
    kClosed,  ///< close()d — server draining (draining)
  };

  /// `lanes` empty configures a single default lane {id 0, weight 1}.
  /// Lane capacities of 0 fall back to `default_capacity`.
  TenantQueueSet(std::vector<TenantLane> lanes, std::size_t default_capacity);

  std::size_t num_lanes() const { return lanes_.size(); }
  uint16_t lane_id(std::size_t lane) const { return lanes_[lane].spec.id; }
  uint32_t lane_weight(std::size_t lane) const {
    return lanes_[lane].spec.weight;
  }
  /// Dense lane index for a tenant id; unknown tenants map to lane 0 (the
  /// default tenant) so a client with a bogus id is rate-shared, not
  /// crashed.
  std::size_t lane_of(uint16_t tenant) const;

  /// Request is untouched unless kOk is returned. The lane is
  /// req.tenant_slot (resolve with lane_of first).
  PushResult push(PredictRequest&& req);

  /// Blocks until at least one request is available or the queue is
  /// closed, then assembles up to `max_batch` requests by weighted
  /// round-robin: starting from a rotating cursor, each non-empty lane
  /// contributes up to its weight per visit, cycling until the batch is
  /// full or every lane is empty. Under saturation each tenant's share of
  /// dequeued requests converges to weight / sum(weights). An empty result
  /// means closed-and-drained: the reader loop should exit. Safe for many
  /// concurrent poppers (the replicated readers).
  std::vector<PredictRequest> pop_batch(std::size_t max_batch);

  /// Move out everything queued right now without blocking (watchdog
  /// flush, drain-time rejection). Never returns requests to the queue.
  std::vector<PredictRequest> drain_all();

  /// Wakes every popper; subsequent pushes fail, already-queued requests
  /// still drain (readers reject them promptly while draining).
  void close();
  /// Re-arm after close() so the server can be start()ed again.
  void reopen();

  std::size_t depth() const;
  std::size_t max_depth() const;
  std::size_t lane_depth(std::size_t lane) const;

 private:
  struct Lane {
    explicit Lane(TenantLane s) : spec(s) {}
    TenantLane spec;
    std::deque<PredictRequest> q;
  };

  std::vector<Lane> lanes_;  // layout fixed after construction
  mutable Mutex mu_{"serve::TenantQueueSet::mu_"};
  ConditionVariable cv_;
  std::size_t total_ STG_GUARDED_BY(mu_) = 0;
  std::size_t max_depth_ STG_GUARDED_BY(mu_) = 0;
  std::size_t cursor_ STG_GUARDED_BY(mu_) = 0;
  bool closed_ STG_GUARDED_BY(mu_) = false;
};

}  // namespace stgraph::serve
