// Deterministic random number generation for dataset synthesis, parameter
// initialization and property tests. Xoshiro256** seeded via SplitMix64 —
// fast, high quality, and reproducible across platforms (unlike
// std::mt19937 + std::normal_distribution, whose outputs are not pinned by
// the standard for all library implementations; we implement the
// distributions ourselves).
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace stgraph {

/// SplitMix64: used to expand a single seed into Xoshiro state.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}
  uint64_t next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

/// Complete serializable snapshot of an Rng: the Xoshiro words plus the
/// Box–Muller carry. Restoring it resumes the stream bit-for-bit, which
/// the trainer's checkpoint/resume equivalence guarantee depends on.
struct RngState {
  uint64_t s[4] = {0, 0, 0, 0};
  bool has_cached_normal = false;
  float cached_normal = 0.0f;
};

/// Xoshiro256** PRNG with convenience samplers.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5742474f4c454cULL);

  /// Snapshot / restore the full generator state (checkpointing).
  RngState state() const;
  void set_state(const RngState& state);

  uint64_t next_u64();
  /// Uniform in [0, bound).
  uint64_t next_below(uint64_t bound);
  /// Uniform in [0, 1).
  double next_double();
  /// Uniform float in [lo, hi).
  float uniform(float lo, float hi);
  /// Standard normal via Box–Muller (cached second value).
  float normal();
  /// Normal with mean/stddev.
  float normal(float mean, float stddev);
  /// Bernoulli trial.
  bool bernoulli(double p);
  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(next_below(i));
      std::swap(v[i - 1], v[j]);
    }
  }
  /// Sample k distinct indices from [0, n) (k <= n).
  std::vector<uint64_t> sample_without_replacement(uint64_t n, uint64_t k);

 private:
  uint64_t s_[4];
  bool has_cached_normal_ = false;
  float cached_normal_ = 0.0f;
};

}  // namespace stgraph
