// Single-threaded epoll event loop — the reactor under the network
// front-end. One thread calls run(); every registered fd's callback fires
// on that thread, so connection state needs no locking. Other threads
// talk to the loop exclusively through post(), which enqueues a task and
// wakes the loop via an eventfd — this is how the server's reader threads
// hand completed predict responses back to the socket layer.
//
// Level-triggered (the epoll default): a callback that does not fully
// drain its fd is simply invoked again on the next wait, which is what
// makes the torn-read failpoint (read 1 byte per event) a slowdown rather
// than a stall.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>

#include "runtime/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace stgraph::net {

class EventLoop {
 public:
  /// Bitmask of EPOLLIN/EPOLLOUT (and error bits on delivery).
  using IoCallback = std::function<void(uint32_t events)>;

  EventLoop();
  ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Register `fd` (loop thread only, or before run() starts). The loop
  /// does not own the fd; unregister with remove() before closing it.
  void add(int fd, uint32_t events, IoCallback cb);
  /// Change the interest set of a registered fd (loop thread only).
  void modify(int fd, uint32_t events);
  /// Unregister; pending events for the fd are dropped (loop thread only).
  void remove(int fd);

  /// Enqueue `fn` to run on the loop thread; wakes the loop. Thread-safe;
  /// callable before run() (tasks run at loop startup) and after stop()
  /// (tasks are discarded when the loop has exited).
  void post(std::function<void()> fn);

  /// Process events and posted tasks until stop(). Runs on the caller.
  void run();
  /// Ask the loop to exit after the current iteration. Thread-safe.
  void stop();

  bool on_loop_thread() const;

 private:
  void wake();
  void drain_posted();

  int epfd_ = -1;
  int wakefd_ = -1;  // eventfd
  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> loop_tid_{0};
  // shared_ptr so a callback that remove()s its own fd (or a sibling's)
  // mid-dispatch never frees a std::function the loop is still executing.
  std::unordered_map<int, std::shared_ptr<IoCallback>> handlers_;
  Mutex post_mu_{"net::EventLoop::post_mu_"};
  std::deque<std::function<void()>> posted_ STG_GUARDED_BY(post_mu_);
};

}  // namespace stgraph::net
