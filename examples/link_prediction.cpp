// Link prediction on an evolving interaction network — the DTDG workload
// from the paper's evaluation (stack-exchange style interaction streams).
//
// Demonstrates the DTDG-specific machinery end to end:
//   * windowing a raw interaction stream into snapshots with a bounded
//     %-change between consecutive snapshots,
//   * the two DTDG storage formats (NaiveGraph vs GPMAGraph) trained
//     interchangeably through the same STGraphBase abstraction,
//   * the memory/speed trade-off between them, measured live,
//   * ranking held-out candidate pairs by predicted link score.
//
// Build & run:  ./build/examples/link_prediction
#include <algorithm>
#include <iostream>

#include "core/trainer.hpp"
#include "datasets/synthetic.hpp"
#include "gpma/gpma_graph.hpp"
#include "graph/naive_graph.hpp"
#include "nn/models.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

using namespace stgraph;

int main() {
  // Load an sx-mathoverflow-like interaction stream and window it.
  datasets::DynamicLoadOptions opts;
  opts.scale = 0.02;
  opts.feature_size = 8;
  opts.link_samples_per_step = 128;
  datasets::DynamicDataset ds = datasets::load_sx_mathoverflow(opts);
  const DtdgEvents events = datasets::make_dtdg(ds, /*percent_change=*/5.0);
  std::cout << ds.name << ": " << ds.num_nodes << " users, "
            << ds.stream.size() << " interactions → "
            << events.num_timestamps() << " snapshots ("
            << events.mean_percent_change() << "% mean change)\n";

  const datasets::TemporalSignal signal =
      datasets::make_dynamic_signal(events, opts);

  // Train the same encoder on both DTDG formats and compare their system
  // behaviour (losses are identical by construction).
  core::TrainConfig cfg;
  cfg.epochs = 1;
  cfg.sequence_length = 8;
  cfg.lr = 2e-2f;
  cfg.task = core::Task::kLinkPrediction;

  auto train_on = [&](STGraphBase& graph, const char* label) {
    Rng rng(11);
    nn::TGCNEncoder model(opts.feature_size, 16, rng);
    core::STGraphTrainer trainer(graph, model, signal, cfg);
    Timer timer;
    double loss = 0;
    for (int e = 0; e < 12; ++e) loss = trainer.train_epoch().loss;
    std::cout << label << ": final bce " << loss << ", " << timer.seconds()
              << " s, resident graph bytes "
              << graph.device_bytes() / 1024.0 << " KiB\n";
    return loss;
  };

  NaiveGraph naive(events);
  GpmaGraph gpma(events);
  const double loss_naive = train_on(naive, "STGraph-Naive");
  const double loss_gpma = train_on(gpma, "STGraph-GPMA ");
  std::cout << "loss agreement: |Δ| = "
            << std::abs(loss_naive - loss_gpma) << "\n\n";

  // Use the trained encoder to rank candidate pairs at the final snapshot.
  Rng rng(11);
  nn::TGCNEncoder model(opts.feature_size, 16, rng);
  core::STGraphTrainer trainer(gpma, model, signal, cfg);
  for (int e = 0; e < 12; ++e) trainer.train_epoch();

  {
    NoGradGuard ng;
    core::TemporalExecutor exec(gpma);
    Tensor h = model.initial_state(ds.num_nodes);
    for (uint32_t t = 0; t < events.num_timestamps(); ++t) {
      exec.begin_forward_step(t);
      auto [out, h_next] = model.step(exec, signal.features[t], h, nullptr);
      h = h_next;
    }
    // Score a candidate set: true edges of the last snapshot vs random
    // non-edges; report how well scores separate them.
    Rng sample_rng(99);
    const EdgeList last = events.snapshot_edges(events.num_timestamps() - 1);
    std::vector<uint32_t> src, dst;
    const uint32_t k = 200;
    for (uint32_t i = 0; i < k; ++i) {
      const auto& [s, d] = last[sample_rng.next_below(last.size())];
      src.push_back(s);
      dst.push_back(d);
    }
    for (uint32_t i = 0; i < k; ++i) {
      src.push_back(static_cast<uint32_t>(sample_rng.next_below(ds.num_nodes)));
      dst.push_back(static_cast<uint32_t>(sample_rng.next_below(ds.num_nodes)));
    }
    Tensor logits = nn::link_logits(h, src, dst);
    // AUC via rank statistic: P(score_pos > score_neg).
    uint64_t wins = 0, ties = 0;
    for (uint32_t p = 0; p < k; ++p)
      for (uint32_t q = k; q < 2 * k; ++q) {
        if (logits.at(p) > logits.at(q)) ++wins;
        else if (logits.at(p) == logits.at(q)) ++ties;
      }
    const double auc =
        (wins + 0.5 * ties) / (static_cast<double>(k) * k);
    std::cout << "link-ranking AUC on held-out candidates: " << auc << "\n";
  }
  return 0;
}
