// Training schedule utilities: learning-rate schedulers over the
// Optimizer interface and patience-based early stopping — the harness
// pieces a released training framework ships next to its optimizers.
#pragma once

#include <cstdint>
#include <limits>

#include "nn/optim.hpp"

namespace stgraph::nn {

/// Multiply the learning rate by `gamma` every `step_size` epochs
/// (torch.optim.lr_scheduler.StepLR).
class StepLR {
 public:
  StepLR(Optimizer& optimizer, uint32_t step_size, float gamma = 0.1f);

  /// Advance one epoch; applies the decay when the boundary is crossed.
  void step();
  float current_lr() const { return lr_; }
  uint32_t epoch() const { return epoch_; }

 private:
  Optimizer& optimizer_;
  uint32_t step_size_;
  float gamma_;
  float lr_;
  uint32_t epoch_ = 0;
};

/// Stop when the monitored loss has not improved by at least `min_delta`
/// for `patience` consecutive epochs.
class EarlyStopping {
 public:
  explicit EarlyStopping(uint32_t patience, double min_delta = 0.0);

  /// Feed one epoch's validation loss; returns true when training should
  /// stop. The best value seen so far is retained.
  bool update(double loss);

  bool should_stop() const { return stopped_; }
  double best() const { return best_; }
  uint32_t epochs_since_best() const { return stale_; }

 private:
  uint32_t patience_;
  double min_delta_;
  double best_ = std::numeric_limits<double>::infinity();
  uint32_t stale_ = 0;
  bool stopped_ = false;
};

}  // namespace stgraph::nn
