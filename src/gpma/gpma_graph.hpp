// GPMAGraph (paper §V-D): a DTDG stored as a base graph inside a Packed
// Memory Array plus per-timestamp edge deltas. Snapshots are constructed
// on demand:
//
//   * Algorithm 2 (Get-Graph): roll the PMA from its cached position to the
//     requested timestamp by replaying (or inverting) deltas, then relabel
//     edges 0..m-1 in slot order so forward and backward views share
//     labels. A snapshot cache avoids replaying a whole sequence's deltas
//     when training moves from the backward pass of one sequence to the
//     forward pass of the next.
//   * Algorithm 3 (Reverse-GPMA): build the compacted reverse CSR
//     (in-neighbor view for the forward pass) straight from the gapped PMA
//     arrays — seed the per-destination cursor array with an inclusive
//     prefix sum of the in-degrees, then scatter in parallel with
//     atomic_sub.
//
// The backward pass consumes the gapped PMA arrays directly (kernels skip
// SPACE slots), so no out-CSR is ever materialized.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "gpma/pma.hpp"
#include "graph/dtdg.hpp"
#include "graph/stgraph_base.hpp"
#include "util/timer.hpp"

namespace stgraph {

class GpmaGraph final : public STGraphBase {
 public:
  explicit GpmaGraph(const DtdgEvents& events);

  uint32_t num_nodes() const override { return num_nodes_; }
  uint32_t num_edges_at(uint32_t t) const override;
  uint32_t num_timestamps() const override {
    return static_cast<uint32_t>(deltas_.size()) + 1;
  }
  bool is_dynamic() const override { return true; }
  std::string format_name() const override { return "GPMAGraph"; }

  SnapshotView get_graph(uint32_t t) override;
  SnapshotView get_backward_graph(uint32_t t) override;

  std::size_t device_bytes() const override;

  /// Streaming ingestion: record one more per-timestamp delta at the head
  /// of the timeline. O(|delta|) — the PMA itself is untouched until a
  /// get_graph() positions past the new timestamp, which is exactly the
  /// paper's lazy Algorithm-2 replay applied to serving. Strong exception
  /// guarantee (bounds are validated before anything is stored).
  bool supports_append() const override { return true; }
  void append_delta(const EdgeDelta& delta) override;

  /// Time spent replaying deltas + rebuilding views (Figure 9's
  /// "graph update time").
  PhaseTimer& update_timer() { return update_timer_; }

  /// Current PMA position (exposed for tests).
  uint32_t current_timestamp() const { return curr_time_; }
  const Pma& pma() const { return pma_; }
  /// Disable the Algorithm-2 snapshot cache (ablation bench).
  void set_cache_enabled(bool enabled) { cache_enabled_ = enabled; }
  uint64_t delta_replays() const { return delta_replays_; }

 private:
  struct DeviceDelta {
    DeviceBuffer<uint64_t> additions;
    DeviceBuffer<uint64_t> deletions;
  };

  /// Roll the PMA to timestamp `target` (Algorithm 2 core).
  void position(uint32_t target);
  void apply_delta(uint32_t idx, bool forward);
  /// Relabel edges in slot order + rebuild row offsets, degree-sorted
  /// orders and the Algorithm-3 reverse CSR.
  void rebuild_views();
  void save_cache();
  void restore_cache();

  uint32_t num_nodes_ = 0;
  Pma pma_;
  std::vector<DeviceDelta> deltas_;
  std::vector<uint32_t> edges_at_;  // |E_t| per timestamp

  // Derived per-snapshot arrays (device-resident).
  DeviceBuffer<uint32_t> col_;         // dst per slot, kSpace for gaps
  DeviceBuffer<uint32_t> eids_;        // edge label per slot
  DeviceBuffer<uint32_t> row_offset_;  // V+1, into slot positions
  DeviceBuffer<uint32_t> in_deg_, out_deg_;
  DeviceBuffer<uint32_t> fwd_order_, bwd_order_;
  // Algorithm-3 output.
  DeviceBuffer<uint32_t> r_row_offset_, r_col_, r_eids_;

  uint32_t curr_time_ = 0;
  bool views_fresh_ = false;

  // Algorithm-2 cache: deep PMA copy + degrees at cache_time_.
  bool cache_enabled_ = true;
  std::optional<Pma> cache_pma_;
  std::vector<uint32_t> cache_in_deg_, cache_out_deg_;
  uint32_t cache_time_ = 0;

  PhaseTimer update_timer_;
  uint64_t delta_replays_ = 0;
};

/// Algorithm 3, exposed standalone for unit tests and the ablation bench:
/// build the compacted reverse CSR of a gapped adjacency.
void reverse_gpma(uint32_t num_nodes, const DeviceBuffer<uint32_t>& row_offset,
                  const DeviceBuffer<uint32_t>& col,
                  const DeviceBuffer<uint32_t>& eids,
                  const DeviceBuffer<uint32_t>& in_degrees, uint32_t num_edges,
                  DeviceBuffer<uint32_t>& r_row_offset,
                  DeviceBuffer<uint32_t>& r_col,
                  DeviceBuffer<uint32_t>& r_eids);

}  // namespace stgraph
