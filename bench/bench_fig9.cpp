// Figure 9: percentage breakup of STGraph-GPMA's total processing time
// into GNN processing time and graph update time, per DTDG, across
// feature sizes (5% snapshot change). Expected shape: the graph-update
// share shrinks as the feature size grows.
//
// The update time is further split into its two phases (Algorithm-2 delta
// replay vs snapshot-view maintenance), and a second section isolates the
// view-maintenance cost on a small-delta workload with the delta-bounded
// incremental path on vs off (full rebuild every refresh). Everything is
// also written as BENCH_fig9.json (path via --json-out=, default
// BENCH_fig9.json; empty to skip).
#include <fstream>
#include <iostream>
#include <sstream>

#include "common.hpp"
#include "gpma/gpma_graph.hpp"

using namespace stgraph;
using namespace stgraph::bench;

namespace {

struct ViewAblation {
  std::string dataset;
  uint32_t timesteps = 0;      // get_graph calls measured per mode
  double incremental_s = 0.0;  // total view-maintenance seconds
  double full_s = 0.0;
  uint64_t incremental_updates = 0;
  uint64_t incremental_fallbacks = 0;  // full rebuilds on the incremental run
  uint64_t full_rebuilds = 0;
  double speedup() const {
    return incremental_s > 0.0 ? full_s / incremental_s : 0.0;
  }
};

// Roll a GPMA graph through every timestamp, forward then backward, for
// `passes` round trips, and return the accumulated view-maintenance time.
// This isolates the cost the incremental path targets: no GNN, no signal.
void roll_views(GpmaGraph& g, uint32_t passes, ViewAblation& out,
                bool incremental) {
  const uint32_t T = g.num_timestamps();
  // Serial schedule: without prefetch hints the pipeline would prepare
  // (and publish-copy) inline on every call, charging the copy to the
  // view timer and diluting the incremental-vs-full comparison.
  g.set_pipeline_enabled(false);
  g.set_incremental_views(incremental);
  // Warm pass (first rebuilds allocate the view buffers).
  for (uint32_t t = 0; t < T; ++t) g.get_graph(t);
  g.reset_update_stats();
  uint32_t calls = 0;
  for (uint32_t p = 0; p < passes; ++p) {
    for (uint32_t t = 0; t < T; ++t, ++calls) g.get_graph(t);
    for (uint32_t t = T; t-- > 0; ++calls) g.get_graph(t);
  }
  out.timesteps = calls;
  if (incremental) {
    out.incremental_s = g.view_timer().total_seconds();
    out.incremental_updates = g.incremental_view_updates();
    out.incremental_fallbacks = g.full_view_rebuilds();
  } else {
    out.full_s = g.view_timer().total_seconds();
    out.full_rebuilds = g.full_view_rebuilds();
  }
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  BenchOptions opts = parse_options(argc, argv);
  std::string json_out = "BENCH_fig9.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json-out=", 0) == 0) json_out = arg.substr(11);
  }

  datasets::DynamicLoadOptions dyo;
  dyo.scale = opts.scale_dynamic;

  CsvWriter csv({"dataset", "feature_size", "update_s", "position_s",
                 "view_s", "gnn_s", "forward_s", "backward_s", "stall_s",
                 "pf_hits", "pf_misses", "update_pct", "gnn_pct",
                 "incr_updates", "full_rebuilds", "tape_ops", "tape_mib",
                 "fused_ops", "fused_mib"});
  std::ostringstream rows_json;

  bool first_row = true;
  for (const auto& ds : datasets::load_all_dynamic(dyo)) {
    const DtdgEvents events = datasets::make_dtdg(ds, 5.0);
    for (int64_t F : feature_sweep(opts)) {
      dyo.feature_size = F;
      const datasets::TemporalSignal signal =
          datasets::make_dynamic_signal(events, dyo);
      const RunResult gpma =
          run_dtdg(events, signal, System::kStgraphGpma, opts);
      const double total = gpma.graph_update_seconds + gpma.gnn_seconds;
      csv.add_row({ds.name, std::to_string(F),
                   CsvWriter::fmt(gpma.graph_update_seconds, 4),
                   CsvWriter::fmt(gpma.position_seconds, 4),
                   CsvWriter::fmt(gpma.view_seconds, 4),
                   CsvWriter::fmt(gpma.gnn_seconds, 4),
                   CsvWriter::fmt(gpma.forward_seconds, 4),
                   CsvWriter::fmt(gpma.backward_seconds, 4),
                   CsvWriter::fmt(gpma.stall_seconds, 4),
                   std::to_string(gpma.prefetch_hits),
                   std::to_string(gpma.prefetch_misses),
                   CsvWriter::fmt(100.0 * gpma.graph_update_seconds /
                                      std::max(total, 1e-9),
                                  1),
                   CsvWriter::fmt(100.0 * gpma.gnn_seconds /
                                      std::max(total, 1e-9),
                                  1),
                   std::to_string(gpma.incremental_view_updates),
                   std::to_string(gpma.full_view_rebuilds),
                   std::to_string(gpma.tape_op_count),
                   CsvWriter::fmt(gpma.tape_bytes / (1024.0 * 1024.0), 2),
                   std::to_string(gpma.fused_op_count),
                   CsvWriter::fmt(gpma.fused_bytes / (1024.0 * 1024.0), 2)});
      rows_json << (first_row ? "" : ",") << "\n    {\"dataset\": \""
                << json_escape(ds.name) << "\", \"feature_size\": " << F
                << ", \"update_s\": " << gpma.graph_update_seconds
                << ", \"position_s\": " << gpma.position_seconds
                << ", \"view_s\": " << gpma.view_seconds
                << ", \"gnn_s\": " << gpma.gnn_seconds
                << ", \"forward_s\": " << gpma.forward_seconds
                << ", \"backward_s\": " << gpma.backward_seconds
                << ", \"stall_s\": " << gpma.stall_seconds
                << ", \"prefetch_hits\": " << gpma.prefetch_hits
                << ", \"prefetch_misses\": " << gpma.prefetch_misses
                << ", \"incremental_view_updates\": "
                << gpma.incremental_view_updates
                << ", \"full_view_rebuilds\": " << gpma.full_view_rebuilds
                << ", \"tape_ops\": " << gpma.tape_op_count
                << ", \"tape_bytes\": " << gpma.tape_bytes
                << ", \"fused_ops\": " << gpma.fused_op_count
                << ", \"fused_bytes\": " << gpma.fused_bytes << "}";
      first_row = false;
      std::cout << "." << std::flush;
    }
  }
  std::cout << "\n";
  emit("fig9_gpma_time_breakup", csv, opts);

  // Incremental-vs-full view maintenance on a small-delta workload (0.5%
  // change per timestep): the delta-bounded path must beat the full
  // rebuild by a wide margin when little of the PMA moves per step.
  CsvWriter acsv({"dataset", "steps", "incr_view_ms_per_step",
                  "full_view_ms_per_step", "speedup", "incr_updates",
                  "incr_fallbacks"});
  std::ostringstream abl_json;
  double min_speedup = 0.0;
  bool first_abl = true;
  const uint32_t passes = opts.full ? 4 : 2;
  for (const auto& ds : datasets::load_all_dynamic(dyo)) {
    const DtdgEvents events = datasets::make_dtdg(ds, 0.5);
    ViewAblation a;
    a.dataset = ds.name;
    {
      GpmaGraph g(events);
      roll_views(g, passes, a, /*incremental=*/true);
    }
    {
      GpmaGraph g(events);
      roll_views(g, passes, a, /*incremental=*/false);
    }
    const double per_inc = 1e3 * a.incremental_s / std::max(1u, a.timesteps);
    const double per_full = 1e3 * a.full_s / std::max(1u, a.timesteps);
    acsv.add_row({a.dataset, std::to_string(a.timesteps),
                  CsvWriter::fmt(per_inc, 5), CsvWriter::fmt(per_full, 5),
                  CsvWriter::fmt(a.speedup(), 2),
                  std::to_string(a.incremental_updates),
                  std::to_string(a.incremental_fallbacks)});
    abl_json << (first_abl ? "" : ",") << "\n    {\"dataset\": \""
             << json_escape(a.dataset) << "\", \"steps\": " << a.timesteps
             << ", \"incremental_view_s\": " << a.incremental_s
             << ", \"full_view_s\": " << a.full_s
             << ", \"incr_view_ms_per_step\": " << per_inc
             << ", \"full_view_ms_per_step\": " << per_full
             << ", \"speedup\": " << a.speedup()
             << ", \"incremental_updates\": " << a.incremental_updates
             << ", \"incremental_fallbacks\": " << a.incremental_fallbacks
             << ", \"full_rebuilds\": " << a.full_rebuilds << "}";
    if (first_abl || a.speedup() < min_speedup) min_speedup = a.speedup();
    first_abl = false;
  }
  emit("fig9_view_maintenance_ablation", acsv, opts);

  if (!json_out.empty()) {
    std::ofstream f(json_out);
    f << "{\n  \"bench\": \"fig9_gpma_time_breakup\",\n  \"rows\": ["
      << rows_json.str() << "\n  ],\n  \"view_ablation\": [" << abl_json.str()
      << "\n  ],\n  \"min_view_speedup\": " << min_speedup << "\n}\n";
    std::cout << "(wrote " << json_out << ", min view-maintenance speedup "
              << CsvWriter::fmt(min_speedup, 2) << "x)\n";
  }
  return 0;
}
