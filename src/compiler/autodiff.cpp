#include "compiler/autodiff.hpp"

#include "compiler/passes.hpp"
#include "util/check.hpp"

namespace stgraph::compiler {

Program differentiate(const Program& p, int input) {
  if (p.agg == AggKind::kMax) {
    // d max / d x flows only along the argmax edge of each (vertex,
    // feature) pair; the backward program is the same (single) term over
    // the transposed graph with argmax routing enabled.
    STG_CHECK(p.terms.size() == 1 && p.terms[0].input == input,
              "max aggregation supports exactly one message term");
    Program b;
    b.agg = AggKind::kMax;
    b.max_backward = true;
    MessageTerm bt;
    bt.coefs = p.terms[0].coefs;
    bt.input = 0;  // gather grad_out
    b.terms.push_back(std::move(bt));
    if (p.include_self && p.self_input == input) {
      b.include_self = true;
      b.self_coefs = p.self_coefs;
      b.self_input = 0;
    }
    b.out_scale = p.out_scale;
    return fold_constants(std::move(b));
  }
  STG_CHECK(p.agg == AggKind::kSum,
            "differentiate expects an optimized (mean-lowered) program");
  Program b;
  b.agg = AggKind::kSum;
  // d out[v] / d x[u] for edge u→v is the coef product — unchanged. The
  // backward program gathers g (slot 0) along the transposed graph; the
  // kernel's role-swap flag keeps each coefficient evaluated with the same
  // (u, v) orientation it had in the forward pass.
  for (const MessageTerm& t : p.terms) {
    if (t.input != input) continue;
    MessageTerm bt;
    bt.coefs = t.coefs;
    bt.input = 0;  // gather grad_out
    b.terms.push_back(std::move(bt));
  }
  if (p.include_self && p.self_input == input) {
    b.include_self = true;
    b.self_coefs = p.self_coefs;
    b.self_input = 0;
  }
  b.out_scale = p.out_scale;
  STG_CHECK(!b.terms.empty() || b.include_self,
            "program does not depend on input ", input);
  if (b.terms.empty()) {
    // Self-only dependency: keep a zero-coefficient neighbor term out of
    // the IR; the kernel handles empty term lists.
  }
  return optimize(std::move(b));
}

BackwardNeeds backward_needs(const Program& p) {
  BackwardNeeds n;
  // Coefficients never reference feature values in this IR family, so the
  // backward kernel is independent of the forward inputs and outputs. Max
  // aggregation additionally needs the recorded argmax routing.
  n.input_features = false;
  n.output_values = false;
  n.graph = true;
  n.argmax = p.agg == AggKind::kMax;
  return n;
}

}  // namespace stgraph::compiler
