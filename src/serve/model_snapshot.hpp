// Frozen model state for the serving runtime (src/serve/, docs/serving.md).
//
// A ModelSnapshot is a deep, detached copy of everything inference needs
// from an STGT training checkpoint: the parameter tensors (with their
// dotted names) and the carried hidden state. Instances are immutable
// after construction and shared as shared_ptr<const ModelSnapshot>, so any
// thread may hold one without locking — the server swaps the active model
// by publishing a new pointer and copying it into the live module between
// micro-batches (the "atomically-swappable handle" of the serving design).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "io/train_state.hpp"
#include "nn/module.hpp"

namespace stgraph::serve {

class ModelSnapshot {
 public:
  /// Deep-copy the inference-relevant fields out of a loaded train state
  /// (optimizer moments, RNG and cursors are dropped — serving never
  /// needs them).
  static ModelSnapshot from_train_state(const io::TrainState& state);

  /// io::load_train_state + from_train_state. Throws StgError on a torn,
  /// truncated or corrupted checkpoint, exactly like resume() does.
  static ModelSnapshot load(const std::string& path);

  /// Frozen parameters, dotted names, Module::parameters() order.
  const std::vector<nn::Parameter>& params() const { return params_; }
  /// Hidden state carried at the checkpoint boundary (may be undefined).
  const Tensor& hidden() const { return hidden_; }
  /// TrainConfig hash of the producing run (identity check for operators).
  uint64_t config_hash() const { return config_hash_; }
  /// Epoch the producing run was inside when the state was captured.
  uint32_t source_epoch() const { return source_epoch_; }
  int64_t parameter_count() const;

  /// Copy the frozen parameters into a live model (strict positional
  /// name + shape match via io::restore_parameters) and switch it to
  /// eval() so every descendant module leaves training mode.
  void install(nn::Module& model) const;

 private:
  std::vector<nn::Parameter> params_;
  Tensor hidden_;
  uint64_t config_hash_ = 0;
  uint32_t source_epoch_ = 0;
};

}  // namespace stgraph::serve
