#include "nn/module.hpp"

#include "util/check.hpp"

namespace stgraph::nn {

std::vector<Parameter> Module::parameters() const {
  std::vector<Parameter> out = own_params_;
  for (const auto& [name, child] : children_) {
    for (const Parameter& p : child->parameters()) {
      out.push_back({name + "." + p.name, p.tensor});
    }
  }
  return out;
}

std::vector<std::pair<std::string, const Module*>> Module::named_modules()
    const {
  std::vector<std::pair<std::string, const Module*>> out;
  out.emplace_back("", this);
  for (const auto& [name, child] : children_) {
    for (const auto& [path, mod] : child->named_modules()) {
      out.emplace_back(path.empty() ? name : name + "." + path, mod);
    }
  }
  return out;
}

void Module::zero_grad() {
  for (Parameter& p : const_cast<Module*>(this)->own_params_) p.tensor.zero_grad();
  for (auto& [name, child] : children_) child->zero_grad();
}

int64_t Module::parameter_count() const {
  int64_t n = 0;
  for (const Parameter& p : parameters()) n += p.tensor.numel();
  return n;
}

Tensor Module::register_parameter(const std::string& name, Tensor t) {
  STG_CHECK(t.defined(), "registering undefined parameter '", name, "'");
  t.set_requires_grad(true);
  own_params_.push_back({name, t});
  return t;
}

void Module::register_module(const std::string& name, Module* child) {
  STG_CHECK(child != nullptr, "registering null submodule '", name, "'");
  children_.emplace_back(name, child);
}

void Module::set_training(bool training) {
  training_ = training;
  for (auto& [name, child] : children_) child->set_training(training);
}

}  // namespace stgraph::nn
