// One accepted client connection, owned by the front-end's event loop
// thread (no locking — every method runs on the loop thread). Wraps a
// non-blocking socket with:
//   * a FrameDecoder reassembling torn input into frames / JSON lines,
//   * an outbound buffer with partial-write handling: queue_write appends,
//     flush() sends what the kernel will take (MSG_NOSIGNAL — a peer that
//     vanished mid-write surfaces as EPIPE, never SIGPIPE) and the caller
//     re-arms EPOLLOUT while bytes remain,
//   * failpoints net.read.torn (read 1 byte per event) and net.write.short
//     (write 1 byte per flush) so tests can force worst-case fragmentation
//     on both directions.
#pragma once

#include <cstdint>
#include <vector>

#include "net/protocol.hpp"

namespace stgraph::net {

class Connection {
 public:
  /// Takes ownership of `fd` (closes it on destruction unless released).
  Connection(int fd, uint64_t id);
  ~Connection();
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  int fd() const { return fd_; }
  uint64_t id() const { return id_; }

  enum class IoResult : uint8_t {
    kOk,        ///< progress made (or EAGAIN — try again on the next event)
    kClosed,    ///< peer closed (EOF) or connection error — drop it
  };

  /// Read whatever the socket has (one recv per event under the torn-read
  /// failpoint) into the decoder.
  IoResult read_into_decoder();
  FrameDecoder& decoder() { return decoder_; }

  /// Append bytes to the outbound buffer (does not write to the socket).
  void queue_write(const std::vector<uint8_t>& bytes);
  /// Push buffered bytes to the kernel; partial writes keep the remainder
  /// queued. Returns kClosed on EPIPE/ECONNRESET.
  IoResult flush();
  bool wants_write() const { return out_off_ < out_.size(); }

  /// Close after the outbound buffer drains (protocol-error goodbyes).
  void set_close_after_flush() { close_after_flush_ = true; }
  bool close_after_flush() const { return close_after_flush_; }

 private:
  int fd_;
  uint64_t id_;
  FrameDecoder decoder_;
  std::vector<uint8_t> out_;
  std::size_t out_off_ = 0;
  bool close_after_flush_ = false;
};

}  // namespace stgraph::net
