// Typed-edge modeling with the extension APIs: a social-commerce graph
// whose edges carry relation types (follows / purchases / reviews), a
// RelationalGCNConv encoder, per-node signal normalization, a StepLR
// schedule and early stopping — the full "released framework" training
// harness on one page.
//
// Build & run:  ./build/examples/typed_edges
#include <iostream>

#include "core/executor.hpp"
#include "datasets/normalize.hpp"
#include "datasets/synthetic.hpp"
#include "graph/static_graph.hpp"
#include "nn/optim.hpp"
#include "nn/rgcn.hpp"
#include "nn/schedule.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"

using namespace stgraph;

int main() {
  // Reuse the WVM-style generator for the structure and assign each edge
  // one of three relation types (hash of endpoints — deterministic).
  datasets::StaticLoadOptions opts;
  opts.scale = 0.15;
  opts.num_timestamps = 40;
  opts.feature_size = 4;
  datasets::StaticTemporalDataset ds = datasets::load_wikimath(opts);
  const int kRelations = 3;
  std::cout << "typed graph: " << ds.num_nodes << " users, "
            << ds.edges.size() << " interactions, " << kRelations
            << " relation types\n";

  // Normalize the signal per node (PyG-T datasets ship standardized).
  const auto scaler = datasets::NodeScaler::fit(ds.signal);
  const datasets::TemporalSignal signal = scaler.transform(ds.signal);

  StaticTemporalGraph graph(ds.num_nodes, ds.edges, ds.num_timestamps);
  core::TemporalExecutor exec(graph);

  // Relation assignment keyed by the snapshot's edge labels: read the
  // labels off the backward view so (src, dst) → eid is explicit.
  SnapshotView view = graph.get_graph(0);
  std::vector<uint8_t> relation_of(view.num_edges, 0);
  for (uint32_t r = 0; r < view.num_nodes; ++r) {
    for (uint32_t j = view.out_view.row_offset[r];
         j < view.out_view.row_offset[r + 1]; ++j) {
      const uint32_t c = view.out_view.col_indices[j];
      relation_of[view.out_view.eids[j]] =
          static_cast<uint8_t>((r * 2654435761u + c) % kRelations);
    }
  }
  Rng enc_rng(42);
  nn::RelationalGCNConv encoder(opts.feature_size, 16, kRelations, enc_rng);
  nn::RelationAssignment relations(relation_of, kRelations);
  relations.materialize();

  Rng rng(43);
  nn::Linear head(16, 1, rng);
  std::vector<nn::Parameter> params = encoder.parameters();
  for (auto& p : head.parameters()) params.push_back(p);
  nn::Adam opt(params, 8e-3f);
  nn::StepLR sched(opt, /*step_size=*/10, /*gamma=*/0.5f);
  nn::EarlyStopping stopper(/*patience=*/6, /*min_delta=*/1e-4);

  const uint32_t T = ds.num_timestamps;
  for (int epoch = 1; epoch <= 60; ++epoch) {
    double loss_total = 0;
    for (uint32_t t = 0; t < T; ++t) {
      exec.begin_forward_step(t);
      Tensor h = encoder.forward(exec, signal.features[t], relations);
      Tensor y = head.forward(ops::relu(h));
      Tensor loss = ops::mse_loss(y, signal.targets[t]);
      opt.zero_grad();
      loss.backward();
      opt.step();
      exec.verify_drained();
      loss_total += loss.item();
    }
    const double epoch_loss = loss_total / T;
    sched.step();
    if (epoch % 10 == 0) {
      std::cout << "epoch " << epoch << "  mse " << epoch_loss << "  lr "
                << opt.learning_rate() << "\n";
    }
    if (stopper.update(epoch_loss)) {
      std::cout << "early stop at epoch " << epoch << " (best "
                << stopper.best() << ")\n";
      break;
    }
  }
  std::cout << "best normalized mse: " << stopper.best() << "\n";
  return 0;
}
