// Parallel prefix sums — the Thrust `inclusive_scan`/`exclusive_scan`
// analogue. Algorithm 3 of the paper (reverse-CSR construction) seeds its
// scatter cursor array with an inclusive prefix sum of the in-degree
// array; CSR row_offset construction uses the exclusive form.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace stgraph::device {

/// out[i] = in[0] + ... + in[i]. `out` may alias `in`.
void inclusive_scan(const uint64_t* in, uint64_t* out, std::size_t n);
void inclusive_scan(const uint32_t* in, uint32_t* out, std::size_t n);

/// out[i] = in[0] + ... + in[i-1]; returns the grand total. `out` may
/// alias `in`.
uint64_t exclusive_scan(const uint64_t* in, uint64_t* out, std::size_t n);
uint32_t exclusive_scan(const uint32_t* in, uint32_t* out, std::size_t n);

/// Convenience vector forms.
std::vector<uint64_t> inclusive_scan(const std::vector<uint64_t>& in);
std::vector<uint64_t> exclusive_scan(const std::vector<uint64_t>& in);

}  // namespace stgraph::device
