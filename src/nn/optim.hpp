// Optimizers over Module parameter lists: SGD (+momentum) and Adam (the
// paper's training harness uses Adam, PyTorch defaults).
#pragma once

#include <vector>

#include "nn/module.hpp"

namespace stgraph::nn {

class Optimizer {
 public:
  Optimizer(std::vector<Parameter> params, float lr)
      : params_(std::move(params)), lr_(lr) {}
  virtual ~Optimizer() = default;
  virtual void step() = 0;
  void zero_grad();

  /// Current learning rate (mutable for schedulers).
  float learning_rate() const { return lr_; }
  void set_learning_rate(float lr) { lr_ = lr; }

 protected:
  std::vector<Parameter> params_;
  float lr_;
};

class Sgd final : public Optimizer {
 public:
  Sgd(std::vector<Parameter> params, float lr, float momentum = 0.0f);
  void step() override;

 private:
  float momentum_;
  std::vector<Tensor> velocity_;
};

class Adam final : public Optimizer {
 public:
  Adam(std::vector<Parameter> params, float lr = 1e-2f, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f);
  void step() override;

 private:
  float beta1_, beta2_, eps_;
  int64_t t_ = 0;
  std::vector<Tensor> m_, v_;
};

}  // namespace stgraph::nn
