// DeviceBuffer<T>: the unit of "device memory" in the CPU substrate.
//
// In the original system these arrays live on the GPU (allocated through
// CUDA-Python / Thrust); here they are host vectors whose bytes are
// charged to MemoryTracker so the paper's memory experiments remain
// meaningful. The buffer is movable but not copyable — explicit `clone()`
// keeps accidental O(E) copies out of hot paths.
#pragma once

#include <cstdlib>
#include <cstring>
#include <new>
#include <utility>
#include <vector>

#if defined(__linux__)
#include <sys/mman.h>
#endif

#include "runtime/memory_tracker.hpp"
#include "util/check.hpp"

namespace stgraph {

/// Allocator for device arrays. Small buffers get cache-line alignment so
/// SIMD row loads never split a line; buffers past 2 MiB are allocated on
/// 2 MiB boundaries and advised MADV_HUGEPAGE, so the kernel can back the
/// feature matrices with huge pages. The sparse gather in the kernel
/// engine touches rows all over a multi-MiB array — with 4 KiB pages that
/// walk misses the second-level TLB constantly, and the page walks show up
/// directly in the gather latency.
template <typename T>
struct DeviceAllocator {
  using value_type = T;

  DeviceAllocator() = default;
  template <typename U>
  DeviceAllocator(const DeviceAllocator<U>&) {}  // NOLINT(runtime/explicit)

  static constexpr std::size_t kHugeBytes = std::size_t{2} << 20;

  T* allocate(std::size_t n) {
    std::size_t bytes = n * sizeof(T);
    const std::size_t align = bytes >= kHugeBytes ? kHugeBytes : 64;
    bytes = (bytes + align - 1) / align * align;  // aligned_alloc contract
    void* p = std::aligned_alloc(align, bytes);
    if (p == nullptr) throw std::bad_alloc();
#if defined(__linux__) && defined(MADV_HUGEPAGE)
    if (align == kHugeBytes) madvise(p, bytes, MADV_HUGEPAGE);
#endif
    return static_cast<T*>(p);
  }
  void deallocate(T* p, std::size_t) noexcept { std::free(p); }

  template <typename U>
  bool operator==(const DeviceAllocator<U>&) const { return true; }
  template <typename U>
  bool operator!=(const DeviceAllocator<U>&) const { return false; }
};

template <typename T>
class DeviceBuffer {
 public:
  DeviceBuffer() = default;
  explicit DeviceBuffer(std::size_t n, MemCategory cat = MemCategory::kScratch)
      : cat_(cat) {
    resize(n);
  }
  DeviceBuffer(std::size_t n, T fill, MemCategory cat)
      : cat_(cat) {
    resize(n);
    std::fill(data_.begin(), data_.end(), fill);
  }
  /// Upload: copy a host vector into device memory.
  DeviceBuffer(const std::vector<T>& host, MemCategory cat) : cat_(cat) {
    resize(host.size());
    if (!host.empty()) std::memcpy(data_.data(), host.data(), bytes());
  }

  ~DeviceBuffer() { charge(0); }

  DeviceBuffer(const DeviceBuffer&) = delete;
  DeviceBuffer& operator=(const DeviceBuffer&) = delete;

  DeviceBuffer(DeviceBuffer&& other) noexcept { *this = std::move(other); }
  DeviceBuffer& operator=(DeviceBuffer&& other) noexcept {
    if (this != &other) {
      charge(0);
      data_ = std::move(other.data_);
      charged_ = other.charged_;
      cat_ = other.cat_;
      other.data_.clear();
      other.charged_ = 0;
    }
    return *this;
  }

  DeviceBuffer clone() const {
    DeviceBuffer out(size(), cat_);
    if (size()) std::memcpy(out.data(), data(), bytes());
    return out;
  }

  /// Resize to n elements. Heap capacity is deliberately retained when
  /// shrinking (like a caching allocator): per-step view rebuilds resize
  /// the same buffers up and down a few percent, and reallocating each
  /// time would put malloc on the hot path. MemoryTracker is charged for
  /// the logical size, matching what the GPU original would allocate.
  void resize(std::size_t n) {
    data_.resize(n);
    charge(n * sizeof(T));
  }

  /// Release the retained slack (used when a buffer goes cold).
  void shrink_to_fit() { data_.shrink_to_fit(); }

  void fill(T v) { std::fill(data_.begin(), data_.end(), v); }

  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }
  std::size_t bytes() const { return data_.size() * sizeof(T); }

  T& operator[](std::size_t i) {
    STG_DCHECK(i < data_.size(), "DeviceBuffer index ", i, " out of range ", data_.size());
    return data_[i];
  }
  const T& operator[](std::size_t i) const {
    STG_DCHECK(i < data_.size(), "DeviceBuffer index ", i, " out of range ", data_.size());
    return data_[i];
  }

  /// Download to a host vector (for tests and debugging).
  std::vector<T> to_host() const { return {data_.begin(), data_.end()}; }

  auto begin() { return data_.begin(); }
  auto end() { return data_.end(); }
  auto begin() const { return data_.begin(); }
  auto end() const { return data_.end(); }

 private:
  void charge(std::size_t new_bytes) {
    auto& tracker = MemoryTracker::instance();
    if (new_bytes > charged_) tracker.allocate(new_bytes - charged_, cat_);
    if (new_bytes < charged_) tracker.release(charged_ - new_bytes, cat_);
    charged_ = new_bytes;
  }

  std::vector<T, DeviceAllocator<T>> data_;
  std::size_t charged_ = 0;
  MemCategory cat_ = MemCategory::kScratch;
};

}  // namespace stgraph
