#include "datasets/synthetic.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace stgraph::datasets {
namespace {

uint32_t scaled(uint32_t base, double scale, uint32_t minimum = 4) {
  return std::max(minimum,
                  static_cast<uint32_t>(std::llround(base * scale)));
}

uint64_t pack(uint32_t s, uint32_t d) {
  return (static_cast<uint64_t>(s) << 32) | d;
}

class ZipfSampler;
EdgeList zipf_graph(uint32_t n, std::size_t target_edges, Rng& rng);

/// Directed graph with heavy-tailed degrees — the hyperlink-graph shape of
/// WVM. Implemented with Zipf-popular endpoints (see ZipfSampler below).
EdgeList preferential_attachment(uint32_t n, std::size_t target_edges,
                                 Rng& rng) {
  STG_CHECK(n >= 2, "need at least two nodes");
  return zipf_graph(n, target_edges, rng);
}

/// Complete directed graph including self pairs excluded (n·(n-1) edges) —
/// plus self pairs if `with_self` to hit exact n² counts like WO/PM.
EdgeList complete_graph(uint32_t n, bool with_self) {
  EdgeList edges;
  edges.reserve(static_cast<std::size_t>(n) * n);
  for (uint32_t s = 0; s < n; ++s)
    for (uint32_t d = 0; d < n; ++d) {
      if (!with_self && s == d) continue;
      edges.emplace_back(s, d);
    }
  return edges;
}

/// Ring of n nodes plus random chords until the edge target is met (county
/// adjacency shape for HC).
EdgeList ring_with_chords(uint32_t n, std::size_t target_edges, Rng& rng) {
  EdgeList edges;
  std::unordered_set<uint64_t> seen;
  for (uint32_t v = 0; v < n; ++v) {
    const uint32_t w = (v + 1) % n;
    edges.emplace_back(v, w);
    edges.emplace_back(w, v);
    seen.insert(pack(v, w));
    seen.insert(pack(w, v));
  }
  std::size_t attempts = 0;
  while (edges.size() < target_edges && attempts++ < target_edges * 50) {
    const uint32_t s = static_cast<uint32_t>(rng.next_below(n));
    const uint32_t d = static_cast<uint32_t>(rng.next_below(n));
    if (s == d || !seen.insert(pack(s, d)).second) continue;
    edges.emplace_back(s, d);
  }
  return edges;
}

/// Chain of stops with occasional transfer links (MB's 675-node / 690-edge
/// near-tree shape).
EdgeList bus_network(uint32_t n, std::size_t target_edges, Rng& rng) {
  EdgeList edges;
  for (uint32_t v = 0; v + 1 < n; ++v) edges.emplace_back(v, v + 1);
  std::unordered_set<uint64_t> seen;
  for (const auto& [s, d] : edges) seen.insert(pack(s, d));
  std::size_t attempts = 0;
  while (edges.size() < target_edges && attempts++ < target_edges * 50) {
    const uint32_t s = static_cast<uint32_t>(rng.next_below(n));
    const uint32_t d = static_cast<uint32_t>(rng.next_below(n));
    if (s == d || !seen.insert(pack(s, d)).second) continue;
    edges.emplace_back(s, d);
  }
  return edges;
}

/// Zipf endpoint sampler: node popularity ∝ rank^(-alpha) under an
/// independent random rank permutation, giving the heavy-tailed degree
/// distributions of the SNAP interaction networks.
class ZipfSampler {
 public:
  ZipfSampler(uint32_t n, double alpha, Rng& rng) : perm_(n) {
    cum_.reserve(n);
    double total = 0;
    for (uint32_t i = 0; i < n; ++i) {
      total += std::pow(static_cast<double>(i + 1), -alpha);
      cum_.push_back(total);
    }
    for (uint32_t i = 0; i < n; ++i) perm_[i] = i;
    rng.shuffle(perm_);
  }
  uint32_t sample(Rng& rng) const {
    const double u = rng.next_double() * cum_.back();
    const auto it = std::lower_bound(cum_.begin(), cum_.end(), u);
    const auto rank = static_cast<std::size_t>(it - cum_.begin());
    return perm_[std::min(rank, perm_.size() - 1)];
  }

 private:
  std::vector<double> cum_;
  std::vector<uint32_t> perm_;
};

/// Unique-edge Zipf graph: sample endpoints until `target_edges` distinct
/// directed edges exist (or the attempt budget runs out on dense corners).
EdgeList zipf_graph(uint32_t n, std::size_t target_edges, Rng& rng) {
  const ZipfSampler src_sampler(n, 0.8, rng);
  const ZipfSampler dst_sampler(n, 0.9, rng);
  EdgeList edges;
  edges.reserve(target_edges);
  std::unordered_set<uint64_t> seen;
  seen.reserve(target_edges * 2);
  std::size_t attempts = 0;
  const std::size_t max_attempts = target_edges * 40;
  while (edges.size() < target_edges && attempts++ < max_attempts) {
    const uint32_t s = src_sampler.sample(rng);
    const uint32_t d = dst_sampler.sample(rng);
    if (s == d || !seen.insert(pack(s, d)).second) continue;
    edges.emplace_back(s, d);
  }
  return edges;
}

/// Time-ordered interaction stream with Zipf-popular endpoints and
/// repeated interactions (SNAP temporal network shape).
EdgeList interaction_stream(uint32_t n, std::size_t events, Rng& rng) {
  EdgeList stream;
  stream.reserve(events);
  // Separate popularity orders for sources and destinations: question
  // askers and answerers are distinct hub sets in the sx-* networks.
  const ZipfSampler src_sampler(n, 0.85, rng);
  const ZipfSampler dst_sampler(n, 0.85, rng);
  for (std::size_t e = 0; e < events; ++e) {
    const uint32_t s = src_sampler.sample(rng);
    uint32_t d = dst_sampler.sample(rng);
    if (s == d) d = (d + 1) % n;
    stream.emplace_back(s, d);
  }
  return stream;
}

/// Row-normalized adjacency step of the diffusion process used to
/// synthesize learnable static-temporal signals.
std::vector<float> diffuse(const std::vector<float>& s, uint32_t n,
                           const EdgeList& edges,
                           const std::vector<uint32_t>& in_deg) {
  std::vector<float> out(n, 0.0f);
  for (const auto& [u, v] : edges) out[v] += s[u] / static_cast<float>(in_deg[v]);
  return out;
}

StaticTemporalDataset finish_static(std::string name, uint32_t n,
                                    EdgeList edges,
                                    const StaticLoadOptions& opts) {
  StaticTemporalDataset ds;
  ds.name = std::move(name);
  ds.num_nodes = n;
  ds.edges = std::move(edges);
  ds.num_timestamps = opts.num_timestamps;
  ds.signal = make_static_signal(ds, opts.feature_size, opts.seed);
  return ds;
}

}  // namespace

TemporalSignal make_static_signal(const StaticTemporalDataset& ds,
                                  int64_t feature_size, uint64_t seed) {
  STG_CHECK(feature_size >= 1, "feature size must be positive");
  Rng rng(seed ^ 0x57474e4eULL);
  const uint32_t n = ds.num_nodes;
  const uint32_t T = ds.num_timestamps;
  const int64_t F = feature_size;

  std::vector<uint32_t> in_deg(n, 1);  // +1 avoids division by zero
  for (const auto& [u, v] : ds.edges) ++in_deg[v];

  // Run the diffusion process for F warm-up lags + T steps + 1 target step.
  std::vector<std::vector<float>> series;
  series.reserve(F + T + 1);
  std::vector<float> s(n);
  for (uint32_t v = 0; v < n; ++v) s[v] = rng.normal(0.0f, 1.0f);
  series.push_back(s);
  for (int64_t step = 1; step < F + T + 1; ++step) {
    std::vector<float> next = diffuse(series.back(), n, ds.edges, in_deg);
    const float seasonal =
        0.3f * std::sin(2.0f * static_cast<float>(M_PI) * step / 24.0f);
    for (uint32_t v = 0; v < n; ++v) {
      next[v] = 0.7f * next[v] + 0.2f * series.back()[v] + seasonal +
                0.05f * rng.normal();
    }
    series.push_back(std::move(next));
  }

  TemporalSignal signal;
  signal.features.reserve(T);
  signal.targets.reserve(T);
  for (uint32_t t = 0; t < T; ++t) {
    // Features: lags s_{t}, s_{t+1}, ..., s_{t+F-1}; target: s_{t+F}.
    std::vector<float> feat(static_cast<std::size_t>(n) * F);
    for (uint32_t v = 0; v < n; ++v)
      for (int64_t l = 0; l < F; ++l)
        feat[static_cast<std::size_t>(v) * F + l] = series[t + l][v];
    signal.features.push_back(
        Tensor::from_vector(feat, {n, F}));
    std::vector<float> target(n);
    for (uint32_t v = 0; v < n; ++v) target[v] = series[t + F][v];
    signal.targets.push_back(Tensor::from_vector(target, {n, 1}));
  }
  // Edge weights in (0.5, 1.5) — exercised through the shared edge labels.
  signal.edge_weights.resize(ds.edges.size());
  for (float& w : signal.edge_weights) w = rng.uniform(0.5f, 1.5f);
  return signal;
}

StaticTemporalDataset load_wikimath(const StaticLoadOptions& opts) {
  Rng rng(opts.seed ^ 0x01);
  const uint32_t n = scaled(1068, opts.scale);
  const std::size_t m = static_cast<std::size_t>(27000 * opts.scale);
  return finish_static("WVM", n, preferential_attachment(n, m, rng), opts);
}

StaticTemporalDataset load_windmill(const StaticLoadOptions& opts) {
  const uint32_t n = scaled(319, opts.scale);
  return finish_static("WO", n, complete_graph(n, /*with_self=*/true), opts);
}

StaticTemporalDataset load_chickenpox(const StaticLoadOptions& opts) {
  Rng rng(opts.seed ^ 0x03);
  const uint32_t n = scaled(20, opts.scale);
  const std::size_t m = static_cast<std::size_t>(102 * opts.scale);
  return finish_static("HC", n, ring_with_chords(n, std::max<std::size_t>(m, 2 * n), rng),
                       opts);
}

StaticTemporalDataset load_montevideo_bus(const StaticLoadOptions& opts) {
  Rng rng(opts.seed ^ 0x04);
  const uint32_t n = scaled(675, opts.scale);
  const std::size_t m = static_cast<std::size_t>(690 * opts.scale);
  return finish_static("MB", n, bus_network(n, std::max<std::size_t>(m, n), rng), opts);
}

StaticTemporalDataset load_pedalme(const StaticLoadOptions& opts) {
  const uint32_t n = scaled(15, opts.scale);
  return finish_static("PM", n, complete_graph(n, /*with_self=*/true), opts);
}

std::vector<StaticTemporalDataset> load_all_static(
    const StaticLoadOptions& opts) {
  std::vector<StaticTemporalDataset> out;
  out.push_back(load_wikimath(opts));
  out.push_back(load_windmill(opts));
  out.push_back(load_chickenpox(opts));
  out.push_back(load_montevideo_bus(opts));
  out.push_back(load_pedalme(opts));
  return out;
}

namespace {
DynamicDataset make_dynamic(std::string name, uint32_t nodes,
                            std::size_t events, const DynamicLoadOptions& opts,
                            uint64_t salt) {
  Rng rng(opts.seed ^ salt);
  DynamicDataset ds;
  ds.name = std::move(name);
  ds.num_nodes = scaled(nodes, opts.scale, 16);
  ds.stream = interaction_stream(
      ds.num_nodes, static_cast<std::size_t>(events * opts.scale), rng);
  return ds;
}
}  // namespace

DynamicDataset load_wiki_talk(const DynamicLoadOptions& opts) {
  // Pruned to the first 2M interactions in the paper (Table II footnote).
  return make_dynamic("wiki-talk-temporal", 120000, 2000000, opts, 0x10);
}
DynamicDataset load_sx_superuser(const DynamicLoadOptions& opts) {
  return make_dynamic("sx-superuser", 194000, 1443000, opts, 0x11);
}
DynamicDataset load_sx_stackoverflow(const DynamicLoadOptions& opts) {
  return make_dynamic("sx-stackoverflow", 194000, 2000000, opts, 0x12);
}
DynamicDataset load_sx_mathoverflow(const DynamicLoadOptions& opts) {
  return make_dynamic("sx-mathoverflow", 24000, 506000, opts, 0x13);
}
DynamicDataset load_reddit_title(const DynamicLoadOptions& opts) {
  return make_dynamic("reddit-title", 55000, 858000, opts, 0x14);
}

std::vector<DynamicDataset> load_all_dynamic(const DynamicLoadOptions& opts) {
  std::vector<DynamicDataset> out;
  out.push_back(load_wiki_talk(opts));
  out.push_back(load_sx_superuser(opts));
  out.push_back(load_sx_stackoverflow(opts));
  out.push_back(load_sx_mathoverflow(opts));
  out.push_back(load_reddit_title(opts));
  return out;
}

DtdgEvents make_dtdg(const DynamicDataset& ds, double percent_change) {
  return window_edge_stream(ds.num_nodes, ds.stream, percent_change);
}

TemporalSignal make_dynamic_signal(const DtdgEvents& events,
                                   const DynamicLoadOptions& opts) {
  Rng rng(opts.seed ^ 0x4c494e4bULL);
  TemporalSignal signal;
  const uint32_t n = events.num_nodes;
  const int64_t F = opts.feature_size;
  const uint32_t T = events.num_timestamps();

  // Persistent node features (identity-like random embeddings): the same
  // tensor handle is reused every timestamp, as PyG-T's dynamic iterators
  // do for feature-less link datasets.
  Tensor base = Tensor::randn({n, F}, rng, 0.5f);
  signal.features.assign(T, base);

  signal.links.reserve(T);
  for (uint32_t t = 0; t < T; ++t) {
    const EdgeList edges = events.snapshot_edges(t);
    LinkSamples ls;
    const uint32_t pos = std::min<uint32_t>(
        opts.link_samples_per_step, static_cast<uint32_t>(edges.size()));
    ls.src.reserve(2 * pos);
    ls.dst.reserve(2 * pos);
    std::vector<float> labels;
    labels.reserve(2 * pos);
    for (uint32_t i = 0; i < pos; ++i) {
      const auto& [s, d] = edges[rng.next_below(edges.size())];
      ls.src.push_back(s);
      ls.dst.push_back(d);
      labels.push_back(1.0f);
    }
    for (uint32_t i = 0; i < pos; ++i) {  // negative samples
      ls.src.push_back(static_cast<uint32_t>(rng.next_below(n)));
      ls.dst.push_back(static_cast<uint32_t>(rng.next_below(n)));
      labels.push_back(0.0f);
    }
    ls.labels = Tensor::from_vector(labels, {static_cast<int64_t>(labels.size())});
    signal.links.push_back(std::move(ls));
  }
  return signal;
}

}  // namespace stgraph::datasets
