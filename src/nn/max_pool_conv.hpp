// SeastarMaxPoolConv — GraphSAGE-maxpool-style convolution built on the
// compiler's max aggregation:
//
//   out[v] = max_{u ∈ N_in(v) ∪ {v}} (X·W)[u]  (+ bias)
//
// This layer is the interesting State-Stack client: unlike the linear GCN
// aggregation (whose backward needs nothing from the forward pass), max
// aggregation must replay the argmax routing, so the compiler's
// backward-needs analysis reports `argmax = true` and the layer pushes
// the recorded indices through the executor's State Stack to its backward
// node — exactly the forward→backward state transport Algorithm 1's
// state-stack exists for.
#pragma once

#include "compiler/autodiff.hpp"
#include "compiler/kernel.hpp"
#include "core/executor.hpp"
#include "nn/module.hpp"

namespace stgraph {
class Rng;
}

namespace stgraph::nn {

class SeastarMaxPoolConv : public Module {
 public:
  SeastarMaxPoolConv(int64_t in_features, int64_t out_features, Rng& rng,
                     bool bias = true);

  Tensor forward(core::TemporalExecutor& exec, const Tensor& x) const;

  const compiler::BackwardNeeds& backward_needs() const { return needs_; }

 private:
  int64_t in_, out_;
  Tensor weight_;
  Tensor bias_;
  compiler::KernelSpec fwd_kernel_;
  compiler::KernelSpec bwd_kernel_;
  compiler::BackwardNeeds needs_;
};

}  // namespace stgraph::nn
