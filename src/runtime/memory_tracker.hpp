// Device-memory accounting — the stand-in for `nvidia-smi` in the paper's
// memory experiments (Figures 6 and 8).
//
// Every allocation that would live in GPU device memory in the original
// system (tensor storage, CSR arrays, PMA arrays, per-edge message buffers)
// is charged to this tracker, tagged with a category so benches can report
// where the bytes went. The tracker keeps a running total and a
// high-water mark; figure benches reset the peak before the measured
// region and report `peak_bytes()` afterwards.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

#include "util/thread_annotations.hpp"

namespace stgraph {

/// What kind of structure an allocation backs. Used for the per-category
/// breakdowns in EXPERIMENTS.md and the memory benches.
enum class MemCategory : uint8_t {
  kTensor = 0,     // dense tensor storage (features, weights, activations)
  kGraph,          // CSR/COO arrays for a materialized snapshot
  kPma,            // packed-memory-array slots and metadata
  kEdgeMessage,    // per-edge message buffers (baseline's duplication)
  kScratch,        // transient kernel workspace
  kCount
};

const char* mem_category_name(MemCategory c);

/// Process-wide device memory tracker. Thread-safe; all counters are
/// atomics because kernels may allocate scratch from worker threads.
class MemoryTracker {
 public:
  static MemoryTracker& instance();

  void allocate(std::size_t bytes, MemCategory cat);
  void release(std::size_t bytes, MemCategory cat);

  std::size_t current_bytes() const { return current_.load(std::memory_order_relaxed); }
  std::size_t peak_bytes() const { return peak_.load(std::memory_order_relaxed); }
  std::size_t current_bytes(MemCategory cat) const {
    return by_cat_[static_cast<size_t>(cat)].load(std::memory_order_relaxed);
  }
  std::size_t peak_bytes(MemCategory cat) const {
    return peak_by_cat_[static_cast<size_t>(cat)].load(std::memory_order_relaxed);
  }
  uint64_t allocation_count() const { return allocs_.load(std::memory_order_relaxed); }

  /// Reset the high-water mark to the current residency (start of a
  /// measured region). Does not touch live-allocation counters.
  void reset_peak();

  /// Human-readable snapshot ("current=…MiB peak=…MiB [tensor=… graph=…]").
  std::string summary() const;

 private:
  MemoryTracker() = default;
  std::atomic<std::size_t> current_{0};
  std::atomic<std::size_t> peak_{0};
  std::atomic<uint64_t> allocs_{0};
  std::array<std::atomic<std::size_t>, static_cast<size_t>(MemCategory::kCount)> by_cat_{};
  std::array<std::atomic<std::size_t>, static_cast<size_t>(MemCategory::kCount)> peak_by_cat_{};
};

/// RAII helper: resets the global peak on construction; `peak()` reads the
/// high-water mark reached since then.
class PeakMemoryRegion {
 public:
  PeakMemoryRegion() { MemoryTracker::instance().reset_peak(); }
  std::size_t peak() const { return MemoryTracker::instance().peak_bytes(); }
};

}  // namespace stgraph
