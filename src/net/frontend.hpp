// Network serving front-end: owns the socket layer (Listener, EventLoop,
// Connections) and dispatches decoded requests into a serve::Server.
//
// Threading model (docs/serving.md "Network front-end"):
//
//   loop thread    accept, read, decode, STATS/HEALTH, all socket writes
//   reader threads the server's replicated readers fulfil PREDICTs; their
//                  completion callbacks ENCODE the response and post() it
//                  back to the loop thread keyed by connection id — no
//                  socket is ever touched off-loop
//   ingest thread  one dedicated writer: INGEST frames queue here so the
//                  exec-lock wait never blocks the event loop
//
// PREDICT is fully asynchronous end to end: the loop thread calls
// Server::predict_async and moves on; a connection can have any number of
// requests in flight and responses stream back in completion order,
// matched by the echoed request id. Connection ids are never reused, so a
// completion that arrives after its client vanished looks up nothing and
// is dropped harmlessly — never delivered to a recycled socket.
//
// Typed failures cross the wire intact: a ShedError becomes a kError
// frame whose code IS the ShedReason (the taxonomy is shared), parse
// failures become kBadRequest, executor faults kInternal.
//
// stop() drains in order: stop accepting, wait for in-flight predicts and
// queued ingests to resolve (the server's own stop()/drain machinery
// guarantees completions arrive), flush what the sockets will take, close
// every fd, join the threads. Tests assert fd-count parity across a
// start/traffic/stop cycle via /proc/self/fd.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/connection.hpp"
#include "net/event_loop.hpp"
#include "net/listener.hpp"
#include "net/protocol.hpp"
#include "runtime/mutex.hpp"
#include "serve/server.hpp"
#include "util/thread_annotations.hpp"

namespace stgraph::net {

struct FrontendConfig {
  std::string host = "127.0.0.1";
  uint16_t port = 0;  ///< 0 = ephemeral; read the bound port from port()
  /// Queued-but-unstarted ingests before INGEST frames are refused with
  /// queue_full (the server's own inflight quota still applies below).
  std::size_t max_pending_ingests = 64;
};

/// Socket-layer counters (the serve-layer taxonomy lives in ServerStats).
struct FrontendStats {
  uint64_t accepted = 0;
  uint64_t closed = 0;
  uint64_t frames_in = 0;
  uint64_t frames_out = 0;
  uint64_t json_lines_in = 0;
  uint64_t protocol_errors = 0;
};

class Frontend {
 public:
  Frontend(serve::Server& server, FrontendConfig cfg = {});
  ~Frontend();
  Frontend(const Frontend&) = delete;
  Frontend& operator=(const Frontend&) = delete;

  /// Bind, listen and spawn the loop + ingest threads. The server must
  /// already be start()ed (or be started before the first request lands).
  void start();
  /// Drain and shut down (see file header). Idempotent.
  void stop();
  bool running() const { return running_.load(std::memory_order_acquire); }

  uint16_t port() const;
  FrontendStats stats() const;
  /// Live connection count (loop-thread-maintained, racy reads are fine).
  std::size_t connections() const {
    return num_conns_.load(std::memory_order_acquire);
  }

 private:
  struct PendingIngest {
    uint64_t conn_id = 0;
    uint64_t request_id = 0;
    uint16_t tenant = 0;
    EdgeDelta delta;
    Tensor features;
  };

  // ---- loop-thread handlers ----------------------------------------------
  void on_accept();
  void on_conn_event(uint64_t conn_id, uint32_t events);
  void handle_frame(Connection& conn, Frame&& frame);
  void handle_json_line(Connection& conn, const std::string& line);
  void send_frame(Connection& conn, const Frame& frame);
  void send_error(Connection& conn, uint64_t request_id, ErrorCode code,
                  const std::string& message);
  /// Post-target: look up the connection by id (it may be gone) and write.
  void deliver(uint64_t conn_id, std::vector<uint8_t> bytes);
  void close_conn(uint64_t conn_id);
  void update_write_interest(Connection& conn);

  void submit_predict(Connection& conn, uint64_t request_id, uint16_t tenant,
                      std::vector<uint32_t> nodes, bool as_json);
  static ErrorCode map_exception(const std::exception_ptr& ep,
                                 std::string* message);

  // ---- ingest thread ------------------------------------------------------
  void ingest_loop();

  serve::Server& server_;
  FrontendConfig cfg_;
  std::unique_ptr<Listener> listener_;
  EventLoop loop_;
  std::thread loop_thread_;
  std::thread ingest_thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> accepting_{false};

  // Loop-thread-only state (no lock): connections keyed by id, not fd —
  // ids are never reused, so a posted completion can never hit a recycled
  // socket.
  std::unordered_map<uint64_t, std::unique_ptr<Connection>> conns_;
  uint64_t next_conn_id_ = 1;

  std::atomic<std::size_t> num_conns_{0};
  /// Predicts submitted to the server whose completion has not yet been
  /// processed on the loop thread; stop() waits for this to hit zero.
  std::atomic<uint64_t> inflight_predicts_{0};

  Mutex ingest_mu_{"net::Frontend::ingest_mu_"};
  ConditionVariable ingest_cv_;
  std::deque<PendingIngest> ingest_q_ STG_GUARDED_BY(ingest_mu_);
  bool ingest_stop_ STG_GUARDED_BY(ingest_mu_) = false;

  // Counters (atomics: loop thread writes, any thread reads).
  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> closed_{0};
  std::atomic<uint64_t> frames_in_{0};
  std::atomic<uint64_t> frames_out_{0};
  std::atomic<uint64_t> json_lines_in_{0};
  std::atomic<uint64_t> protocol_errors_{0};
};

}  // namespace stgraph::net
