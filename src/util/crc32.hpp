// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the checksum in
// the binary-container footers that lets loaders distinguish a torn write
// from a valid file. Incremental: feed chunks through successive calls by
// passing the previous return value as `seed`.
#pragma once

#include <cstddef>
#include <cstdint>

namespace stgraph {

/// CRC of `n` bytes at `data`, continuing from `seed` (0 for a fresh CRC).
uint32_t crc32(const void* data, std::size_t n, uint32_t seed = 0);

}  // namespace stgraph
