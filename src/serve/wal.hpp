// Write-ahead log for the serving runtime's ingest path ("STGW"
// container): the durability half of the crash story. STGT checkpoints
// capture the model at a training boundary; everything the server ingests
// *after* that checkpoint lives only in memory — until this log. The
// server journals one record per committed timeline step (the start
// snapshot, then every ingested delta + feature matrix), and
// Server::recover() replays checkpoint + WAL to republish a read view
// bit-identical to a process that never crashed.
//
// On-disk format (little-endian, like every STGraph container):
//
//   header   u32 magic "STGW"  u32 version
//   record*  u32 payload_len   u32 crc32(payload)   payload bytes
//
//   payload  u8 type (1=start, 2=ingest)
//            u32 time    — server time AFTER the step commits
//            u64 version — server version AFTER the step commits
//            type=start: features tensor, hidden tensor (rows=0 if none)
//            type=ingest: u32 n_add, u32 n_del, (u32,u32) pairs,
//                         features tensor
//   tensor   u32 rows, u32 cols, rows*cols f32
//
// Torn-tail discipline: records are appended with write(2)+fsync(2) (one
// syscall pair per record by default; WalWriter::sync_every batches). A
// crash mid-append leaves a partial record at the tail; read() stops at
// the first record whose length/CRC does not check out and reports
// `torn_tail` + the byte offset of the last valid record, and
// truncate_torn_tail() shrinks the file back to that offset so subsequent
// appends extend a clean log. A failed in-process append rolls the file
// back itself (ftruncate to the pre-record offset), so the live log never
// carries a torn record while the server runs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/dtdg.hpp"
#include "tensor/tensor.hpp"

namespace stgraph::serve::wal {

constexpr uint32_t kMagic = 0x53544757;  // "STGW" (same byte order family
                                         // as the STGS/STGD/STGC/STGT magics)
constexpr uint32_t kVersion = 1;

enum class RecordType : uint8_t { kStart = 1, kIngest = 2 };

/// One journaled timeline step.
struct Record {
  RecordType type = RecordType::kIngest;
  uint32_t time = 0;     ///< server time after the step committed
  uint64_t version = 0;  ///< server version after the step committed
  EdgeDelta delta;       ///< kIngest only
  Tensor features;       ///< x at `time`
  Tensor hidden;         ///< kStart only: h entering `time` (may be undefined)
};

/// Appender with per-record CRC framing and explicit durability control.
class Writer {
 public:
  /// Opens `path` for appending; `truncate` starts a fresh log (header is
  /// (re)written), otherwise records append after existing content —
  /// recover() uses that to keep journaling into the log it replayed.
  /// `sync_every` fsyncs after every Nth record (1 = every record, the
  /// default; 0 = never, for benches that only care about throughput).
  Writer(const std::string& path, bool truncate, uint32_t sync_every = 1);
  ~Writer();
  Writer(const Writer&) = delete;
  Writer& operator=(const Writer&) = delete;

  /// Append one record. Failpoint "serve.wal.append" fires before the
  /// write; on any failure the file is truncated back to its pre-record
  /// length so the live log never holds a torn record, then StgError is
  /// thrown (the server aborts the ingest — nothing was committed).
  void append(const Record& rec);
  /// Force an fsync now (stop() calls this regardless of sync_every).
  void sync();

  uint64_t records_appended() const { return records_; }
  uint64_t bytes_written() const { return bytes_; }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
  int fd_ = -1;
  uint32_t sync_every_ = 1;
  uint64_t records_ = 0;
  uint64_t bytes_ = 0;
  uint64_t unsynced_ = 0;
};

/// Everything read() learned about a log file.
struct ReadResult {
  std::vector<Record> records;  ///< every CRC-valid record, in order
  uint64_t valid_bytes = 0;     ///< offset just past the last valid record
  uint64_t total_bytes = 0;     ///< file size
  bool torn_tail = false;       ///< trailing bytes failed length/CRC checks
};

/// Parse a WAL. Throws StgError when the file is missing, shorter than a
/// header, or carries the wrong magic/version; a torn tail is NOT an error
/// (that is the crash case recovery exists for) — it is reported in the
/// result and the valid prefix is returned.
ReadResult read(const std::string& path);

/// Truncate `path` down to `r.valid_bytes`, discarding a torn tail so the
/// log ends on a record boundary. No-op when the log is clean.
void truncate_torn_tail(const std::string& path, const ReadResult& r);

}  // namespace stgraph::serve::wal
