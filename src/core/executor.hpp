// Temporally-aware Executor (paper Figure 1 / §V): the component that
// orchestrates which snapshot and which saved state the generated kernels
// see during forward and backward propagation.
//
// Forward protocol (driven by the training loop, Algorithm 1 lines 8-16):
//   begin_forward_step(t)  — position the graph object at t (Algorithm 2
//                            for GPMAGraph) and, for DTDGs, push t onto
//                            the Graph Stack;
//   forward_view()         — adjacency views layers aggregate with;
//   save_for_backward(...) — layers push their backward-needed tensors
//                            onto the State Stack (pruned per the
//                            compiler's backward-needs analysis unless
//                            pruning is disabled).
//
// Backward protocol (driven by the autograd nodes the layers registered,
// lines 18-25): the first backward node of timestamp t calls
// backward_view(t), which pops the Graph Stack (asserting it yields t)
// and re-positions the graph object via Get-Backward-Graph; sibling nodes
// of the same timestamp get the already-positioned view. Saved tensors are
// retrieved by ticket, enforcing the LIFO discipline.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "compiler/autodiff.hpp"
#include "core/graph_stack.hpp"
#include "core/state_stack.hpp"
#include "graph/stgraph_base.hpp"
#include "util/timer.hpp"

namespace stgraph::core {

class TemporalExecutor {
 public:
  explicit TemporalExecutor(STGraphBase& graph);

  STGraphBase& graph() { return graph_; }

  // ---- forward protocol --------------------------------------------------
  /// Position the graph object for the forward pass of timestamp t.
  void begin_forward_step(uint32_t t);
  /// Views of the snapshot positioned by the last begin_forward_step.
  const SnapshotView& forward_view() const;
  uint32_t current_forward_timestamp() const;

  /// Push the pruned saved-tensor set of one layer invocation. When
  /// pruning is disabled (ablation), callers pass the conservative set via
  /// `unpruned` and it is stored instead.
  StateStack::Ticket save_for_backward(std::vector<Tensor> pruned,
                                       std::vector<Tensor> unpruned);

  // ---- backward protocol ---------------------------------------------------
  /// Position the graph object for the backward pass of timestamp t.
  const SnapshotView& backward_view(uint32_t t);
  std::vector<Tensor> retrieve_saved(StateStack::Ticket ticket);

  // ---- configuration / instrumentation ---------------------------------
  /// Disable the State-Stack backward-needs pruning (Figure 6 ablation).
  void set_state_pruning(bool enabled) { state_pruning_ = enabled; }
  bool state_pruning() const { return state_pruning_; }

  /// Forward-only execution for serving (src/serve/): no Graph Stack
  /// pushes, no State Stack retention (save_for_backward becomes a no-op
  /// returning kInferenceTicket), and the backward protocol is rejected
  /// outright. Layers already skip their saves under NoGradGuard; inference
  /// mode makes forward-only execution a property of the executor itself,
  /// so a serving path cannot accidentally retain backward state even if a
  /// caller forgets the guard. Toggling requires drained stacks.
  void set_inference_mode(bool on);
  bool inference_mode() const { return inference_mode_; }
  /// Ticket returned by save_for_backward in inference mode; never
  /// retrievable.
  static constexpr StateStack::Ticket kInferenceTicket =
      ~StateStack::Ticket{0};

  StateStack& state_stack() { return state_stack_; }
  GraphStack& graph_stack() { return graph_stack_; }
  const StateStack& state_stack() const { return state_stack_; }
  const GraphStack& graph_stack() const { return graph_stack_; }

  /// Time spent inside graph positioning (both directions) — together with
  /// GpmaGraph::update_timer this feeds Figure 9's update/GNN split.
  PhaseTimer& positioning_timer() { return positioning_timer_; }

  /// Sanity check between sequences: both stacks must have drained.
  void verify_drained() const;

  /// Exception-safe unwind: drain both stacks and forget the in-progress
  /// step so a throw mid-sequence (a layer error, an injected fault)
  /// leaves the executor reusable instead of poisoned. The trainer calls
  /// this from its catch path; verify_drained() passes afterwards.
  void abort_sequence();

  /// Optional event trace: when set, the executor appends one line per
  /// protocol event ("fwd t=2", "push state #5", "pop graph t=2", ...).
  /// Used by the Figure-2 walkthrough test and for debugging training
  /// patterns; null disables tracing (the default, zero overhead beyond a
  /// branch).
  void set_trace(std::vector<std::string>* sink) { trace_ = sink; }

 private:
  void record(const std::string& event) {
    if (trace_) trace_->push_back(event);
  }
  STGraphBase& graph_;
  StateStack state_stack_;
  GraphStack graph_stack_;
  SnapshotView current_view_{};
  std::optional<uint32_t> fwd_timestamp_;
  std::optional<uint32_t> bwd_timestamp_;
  bool state_pruning_ = true;
  bool inference_mode_ = false;
  PhaseTimer positioning_timer_;
  std::vector<std::string>* trace_ = nullptr;
};

}  // namespace stgraph::core
