// Executor tests: State-Stack LIFO discipline, Graph-Stack pairing,
// pruning switch, drain verification, and eval-mode behaviour.
#include <gtest/gtest.h>

#include "core/backend.hpp"
#include "core/executor.hpp"
#include "graph/naive_graph.hpp"
#include "graph/static_graph.hpp"
#include "nn/models.hpp"
#include "runtime/memory_tracker.hpp"
#include "util/rng.hpp"

namespace stgraph {
namespace {

using core::StateStack;
using core::TemporalExecutor;

DtdgEvents small_dtdg() {
  DtdgEvents ev;
  ev.num_nodes = 4;
  ev.base_edges = {{0, 1}, {1, 2}, {2, 3}};
  ev.deltas.push_back({{{3, 0}}, {{0, 1}}});
  ev.deltas.push_back({{{0, 2}}, {}});
  return ev;
}

TEST(StateStack, PushPopLifo) {
  StateStack s;
  auto t0 = s.push({Tensor::ones({2})});
  auto t1 = s.push({Tensor::ones({3})});
  EXPECT_EQ(s.depth(), 2u);
  auto top = s.pop(t1);
  EXPECT_EQ(top[0].numel(), 3);
  s.pop(t0);
  EXPECT_TRUE(s.empty());
}

TEST(StateStack, OutOfOrderPopThrows) {
  StateStack s;
  auto t0 = s.push({});
  auto t1 = s.push({});
  (void)t1;
  EXPECT_THROW(s.pop(t0), StgError);
}

TEST(StateStack, PopEmptyThrows) {
  StateStack s;
  EXPECT_THROW(s.pop(0), StgError);
}

TEST(StateStack, DeviceBytesTrackHeldTensors) {
  StateStack s;
  EXPECT_EQ(s.device_bytes(), 0u);
  auto t0 = s.push({Tensor::ones({10, 10})});  // 400 bytes
  EXPECT_EQ(s.device_bytes(), 400u);
  auto t1 = s.push({Tensor::ones({5}), Tensor::ones({5})});  // +40
  EXPECT_EQ(s.device_bytes(), 440u);
  EXPECT_EQ(s.peak_device_bytes(), 440u);
  s.pop(t1);
  s.pop(t0);
  EXPECT_EQ(s.device_bytes(), 0u);
  EXPECT_EQ(s.peak_device_bytes(), 440u);  // peak survives the drain
}

TEST(GraphStack, PushPopAndErrors) {
  core::GraphStack g;
  g.push(3);
  g.push(7);
  EXPECT_EQ(g.top(), 7u);
  EXPECT_EQ(g.pop(), 7u);
  EXPECT_EQ(g.pop(), 3u);
  EXPECT_THROW(g.pop(), StgError);
  EXPECT_THROW(g.top(), StgError);
}

TEST(Executor, StaticGraphSkipsGraphStack) {
  StaticTemporalGraph graph(3, {{0, 1}, {1, 2}}, 5);
  TemporalExecutor exec(graph);
  exec.begin_forward_step(0);
  exec.begin_forward_step(1);
  EXPECT_TRUE(exec.graph_stack().empty());  // Algorithm 1: "if G is DTDG"
  exec.backward_view(1);
  exec.verify_drained();
}

TEST(Executor, DynamicGraphPairsForwardAndBackward) {
  NaiveGraph graph(small_dtdg());
  TemporalExecutor exec(graph);
  exec.begin_forward_step(0);
  exec.begin_forward_step(1);
  exec.begin_forward_step(2);
  EXPECT_EQ(exec.graph_stack().depth(), 3u);
  exec.backward_view(2);
  exec.backward_view(1);
  exec.backward_view(0);
  exec.verify_drained();
}

TEST(Executor, BackwardOrderMismatchThrows) {
  NaiveGraph graph(small_dtdg());
  TemporalExecutor exec(graph);
  exec.begin_forward_step(0);
  exec.begin_forward_step(1);
  EXPECT_THROW(exec.backward_view(0), StgError);  // top is 1, not 0
}

TEST(Executor, SiblingBackwardNodesShareOnePop) {
  NaiveGraph graph(small_dtdg());
  TemporalExecutor exec(graph);
  exec.begin_forward_step(0);
  exec.begin_forward_step(1);
  // Three layers of the same timestep all ask for t=1; only the first pops.
  exec.backward_view(1);
  exec.backward_view(1);
  exec.backward_view(1);
  EXPECT_EQ(exec.graph_stack().depth(), 1u);
  exec.backward_view(0);
  exec.verify_drained();
}

TEST(Executor, SavePruningSwitch) {
  StaticTemporalGraph graph(3, {{0, 1}}, 2);
  TemporalExecutor exec(graph);
  exec.begin_forward_step(0);

  Tensor small = Tensor::ones({2, 2});
  Tensor big = Tensor::ones({100, 100});
  auto t0 = exec.save_for_backward({small}, {small, big});
  EXPECT_EQ(exec.state_stack().device_bytes(), 16u);  // pruned set only
  exec.retrieve_saved(t0);

  exec.set_state_pruning(false);
  auto t1 = exec.save_for_backward({small}, {small, big});
  EXPECT_EQ(exec.state_stack().device_bytes(), 16u + 40000u);
  exec.retrieve_saved(t1);
  exec.verify_drained();
}

TEST(Executor, VerifyDrainedDetectsLeftovers) {
  StaticTemporalGraph graph(3, {{0, 1}}, 2);
  TemporalExecutor exec(graph);
  exec.begin_forward_step(0);
  exec.save_for_backward({Tensor::ones({1})}, {Tensor::ones({1})});
  EXPECT_THROW(exec.verify_drained(), StgError);
}

TEST(Executor, NoGradModeSkipsGraphStack) {
  NaiveGraph graph(small_dtdg());
  TemporalExecutor exec(graph);
  {
    NoGradGuard ng;
    exec.begin_forward_step(0);
    exec.begin_forward_step(1);
  }
  EXPECT_TRUE(exec.graph_stack().empty());
  exec.verify_drained();
}

TEST(Executor, ForwardViewRequiresStep) {
  StaticTemporalGraph graph(3, {{0, 1}}, 2);
  TemporalExecutor exec(graph);
  EXPECT_THROW(exec.forward_view(), StgError);
  EXPECT_THROW(exec.current_forward_timestamp(), StgError);
  exec.begin_forward_step(0);
  EXPECT_EQ(exec.current_forward_timestamp(), 0u);
  EXPECT_EQ(exec.forward_view().num_edges, 1u);
}

TEST(Executor, InferenceModeSkipsBothStacksAndRejectsBackward) {
  NaiveGraph graph(small_dtdg());
  TemporalExecutor exec(graph);
  exec.set_inference_mode(true);
  // No NoGradGuard here on purpose: inference mode alone must keep the
  // executor forward-only, even if a caller forgets the guard.
  exec.begin_forward_step(0);
  exec.begin_forward_step(1);
  exec.begin_forward_step(2);
  EXPECT_TRUE(exec.graph_stack().empty());
  auto ticket = exec.save_for_backward({Tensor::ones({4, 4})},
                                       {Tensor::ones({4, 4})});
  EXPECT_EQ(ticket, TemporalExecutor::kInferenceTicket);
  EXPECT_TRUE(exec.state_stack().empty());
  EXPECT_EQ(exec.state_stack().device_bytes(), 0u);
  EXPECT_THROW(exec.backward_view(2), StgError);
  EXPECT_THROW(exec.retrieve_saved(ticket), StgError);
  exec.verify_drained();
}

TEST(Executor, InferenceModeToggleRequiresDrainedStacks) {
  NaiveGraph graph(small_dtdg());
  TemporalExecutor exec(graph);
  exec.begin_forward_step(0);  // training mode: pushes the Graph Stack
  EXPECT_THROW(exec.set_inference_mode(true), StgError);
  exec.backward_view(0);  // drain
  exec.set_inference_mode(true);
  exec.begin_forward_step(0);
  // Inference steps push nothing, so the executor stays drained and the
  // toggle back out is legal at any step boundary.
  exec.set_inference_mode(false);
  exec.verify_drained();
}

TEST(Executor, InferenceForwardRetainsNoGradientOrStackMemory) {
  NaiveGraph graph(small_dtdg());
  TemporalExecutor exec(graph);
  exec.set_inference_mode(true);
  Rng rng(1);
  nn::TGCNEncoder model(3, 4, rng);
  model.eval();
  const Tensor x = Tensor::ones({4, 3});
  auto run_once = [&] {
    NoGradGuard ng;
    Tensor h = model.initial_state(4);
    for (uint32_t t = 0; t < 3; ++t) {
      exec.begin_forward_step(t);
      auto [out, h_next] = model.step(exec, x, h, nullptr);
      h = h_next;
    }
  };
  run_once();  // warm-up (fills any lazily-built caches)
  const std::size_t baseline = MemoryTracker::instance().current_bytes();
  const std::size_t state_peak = exec.state_stack().peak_device_bytes();
  run_once();
  // Forward-only execution retained nothing: no autograd graph, no saved
  // state, no graph-stack entries — residency returns to the baseline.
  EXPECT_EQ(MemoryTracker::instance().current_bytes(), baseline);
  EXPECT_EQ(exec.state_stack().device_bytes(), 0u);
  EXPECT_EQ(exec.state_stack().peak_device_bytes(), state_peak);
  EXPECT_TRUE(exec.graph_stack().empty());
  exec.verify_drained();

  // Contrast: the same steps in training mode do retain backward state.
  TemporalExecutor train_exec(graph);
  Tensor h = model.initial_state(4);
  for (uint32_t t = 0; t < 3; ++t) {
    train_exec.begin_forward_step(t);
    auto [out, h_next] = model.step(train_exec, x, h, nullptr);
    h = h_next;
  }
  EXPECT_GT(train_exec.state_stack().device_bytes(), 0u);
  EXPECT_EQ(train_exec.graph_stack().depth(), 3u);
  train_exec.abort_sequence();
}

TEST(Backend, RegistryCreatesNative) {
  auto names = core::BackendRegistry::instance().available();
  EXPECT_NE(std::find(names.begin(), names.end(), "native"), names.end());
  auto backend = core::BackendRegistry::instance().create("native");
  EXPECT_EQ(backend->name(), "native");
  Tensor t = backend->tensor_from_host({1, 2, 3}, {3});
  EXPECT_EQ(t.at(2), 3.0f);
  EXPECT_THROW(core::BackendRegistry::instance().create("tensorflow"),
               StgError);
}

TEST(Backend, CustomBackendRegistration) {
  struct FakeBackend : core::Backend {
    std::string name() const override { return "fake"; }
    Tensor tensor_from_host(const std::vector<float>& v, Shape s) const override {
      return Tensor::from_vector(v, std::move(s));
    }
    Tensor zeros(Shape s) const override { return Tensor::zeros(std::move(s)); }
    void launch_aggregation(const compiler::KernelSpec&,
                            const compiler::KernelArgs&) const override {}
    void synchronize() const override {}
  };
  core::BackendRegistry::instance().register_backend(
      "fake", [] { return std::make_unique<FakeBackend>(); });
  EXPECT_EQ(core::BackendRegistry::instance().create("fake")->name(), "fake");
}

}  // namespace
}  // namespace stgraph
