#include "gpma/pma.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <sstream>

#include "runtime/sort.hpp"
#include "util/check.hpp"

namespace stgraph {
namespace {
constexpr std::size_t kMinCapacity = 64;
constexpr double kTauLeaf = 0.90;   // max leaf density
constexpr double kTauRoot = 0.70;   // max root density
constexpr double kRhoLeaf = 0.05;   // min leaf density
constexpr double kRhoRoot = 0.30;   // min root density
}  // namespace

Pma::Pma()
    : slots_(kMinCapacity, kEmptyKey, MemCategory::kPma),
      seg_size_(segment_size_for(kMinCapacity)) {
  rebuild_metadata();
}

Pma Pma::clone() const {
  Pma out;
  out.slots_ = slots_.clone();
  out.size_ = size_;
  out.seg_size_ = seg_size_;
  out.leaf_count_ = leaf_count_;
  out.leaf_fence_ = leaf_fence_;
  out.rebalances_ = rebalances_;
  out.resizes_ = resizes_;
  out.dirty_lo_ = dirty_lo_;
  out.dirty_hi_ = dirty_hi_;
  out.leaf_dirty_ = leaf_dirty_;
  out.dirty_global_ = dirty_global_;
  return out;
}

std::size_t Pma::segment_size_for(std::size_t capacity) {
  // Θ(log capacity), rounded up to a power of two that divides capacity.
  const auto log2c = static_cast<std::size_t>(std::bit_width(capacity) - 1);
  std::size_t s = std::bit_ceil(std::max<std::size_t>(8, log2c));
  while (capacity % s != 0) s /= 2;
  return s;
}

std::size_t Pma::tree_height() const {
  const std::size_t leaves = num_leaves();
  return static_cast<std::size_t>(std::bit_width(leaves) - 1);
}

double Pma::upper_density(std::size_t height) const {
  const std::size_t h = tree_height();
  if (h == 0) return kTauRoot;
  return kTauLeaf -
         (kTauLeaf - kTauRoot) * static_cast<double>(height) /
             static_cast<double>(h);
}

double Pma::lower_density(std::size_t height) const {
  const std::size_t h = tree_height();
  if (h == 0) return kRhoRoot;
  return kRhoLeaf +
         (kRhoRoot - kRhoLeaf) * static_cast<double>(height) /
             static_cast<double>(h);
}

std::size_t Pma::route_leaf(uint64_t key) const {
  // First leaf whose prefix-max fence is >= key; such a leaf necessarily
  // holds live keys bounding `key` from above. Past-the-fences keys route
  // to the last leaf.
  auto it = std::lower_bound(leaf_fence_.begin(), leaf_fence_.end(), key);
  if (it == leaf_fence_.end()) return num_leaves() - 1;
  return static_cast<std::size_t>(it - leaf_fence_.begin());
}

std::vector<uint64_t> Pma::collect(std::size_t begin, std::size_t end) const {
  std::vector<uint64_t> keys;
  for (std::size_t i = begin; i < end; ++i) {
    if (slots_[i] != kEmptyKey) keys.push_back(slots_[i]);
  }
  return keys;
}

void Pma::redistribute(const std::vector<uint64_t>& keys, std::size_t begin,
                       std::size_t end) {
  const std::size_t window = end - begin;
  STG_CHECK(keys.size() <= window, "redistribute overflow: ", keys.size(),
            " keys into ", window, " slots");
  for (std::size_t i = begin; i < end; ++i) slots_[i] = kEmptyKey;
  const std::size_t k = keys.size();
  for (std::size_t j = 0; j < k; ++j) {
    // Even spread: strictly increasing because k <= window.
    const std::size_t pos = begin + j * window / k;
    slots_[pos] = keys[j];
  }
  mark_dirty(begin, end);
  ++rebalances_;
}

void Pma::rebuild_metadata() {
  const std::size_t leaves = num_leaves();
  leaf_count_.assign(leaves, 0);
  leaf_fence_.assign(leaves, 0);
  leaf_dirty_.assign(leaves, 1);
  uint64_t fence = 0;
  for (std::size_t l = 0; l < leaves; ++l) {
    uint32_t count = 0;
    for (std::size_t i = l * seg_size_; i < (l + 1) * seg_size_; ++i) {
      if (slots_[i] != kEmptyKey) {
        ++count;
        fence = slots_[i];
      }
    }
    leaf_count_[l] = count;
    leaf_fence_[l] = fence;
  }
}

void Pma::refresh_metadata(std::size_t first_leaf, std::size_t leaf_span) {
  // Incremental variant: recompute counts/fences for the touched window
  // only, then propagate the prefix-max fence rightwards until it
  // stabilizes. O(window + propagation) instead of O(capacity).
  const std::size_t leaves = num_leaves();
  uint64_t fence = first_leaf > 0 ? leaf_fence_[first_leaf - 1] : 0;
  std::size_t l = first_leaf;
  for (; l < std::min(first_leaf + leaf_span, leaves); ++l) {
    uint32_t count = 0;
    for (std::size_t i = l * seg_size_; i < (l + 1) * seg_size_; ++i) {
      if (slots_[i] != kEmptyKey) {
        ++count;
        fence = slots_[i];
      }
    }
    leaf_count_[l] = count;
    leaf_fence_[l] = fence;
  }
  // Propagate the (possibly grown) fence: leaf_fence_ is a prefix max, so
  // raise entries until one already dominates (they are non-decreasing).
  for (; l < leaves && leaf_fence_[l] < fence; ++l) leaf_fence_[l] = fence;
}

void Pma::rebuild_with_capacity(std::vector<uint64_t> keys,
                                std::size_t new_capacity) {
  slots_ = DeviceBuffer<uint64_t>(new_capacity, kEmptyKey, MemCategory::kPma);
  seg_size_ = segment_size_for(new_capacity);
  redistribute(keys, 0, new_capacity);
  size_ = keys.size();
  rebuild_metadata();
  dirty_global_ = true;
  ++resizes_;
}

std::size_t Pma::insert_batch(std::vector<uint64_t> keys) {
  if (keys.empty()) return 0;
  device::radix_sort(keys);
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  // Drop keys already present.
  keys.erase(std::remove_if(keys.begin(), keys.end(),
                            [this](uint64_t k) { return contains(k); }),
             keys.end());
  if (keys.empty()) return 0;
  const std::size_t inserted = keys.size();

  // Global overflow check first: grow so the whole batch fits at root
  // density (the GPU algorithm's "resize" path).
  if (static_cast<double>(size_ + inserted) >
      upper_density(tree_height()) * static_cast<double>(capacity())) {
    std::vector<uint64_t> all = extract_sorted();
    std::vector<uint64_t> merged(all.size() + keys.size());
    std::merge(all.begin(), all.end(), keys.begin(), keys.end(),
               merged.begin());
    std::size_t cap = capacity();
    while (static_cast<double>(merged.size()) >
           kTauRoot * static_cast<double>(cap)) {
      cap *= 2;
    }
    rebuild_with_capacity(std::move(merged), cap);
    return inserted;
  }

  // Route the sorted batch to leaves (contiguous runs per leaf).
  std::size_t i = 0;
  while (i < keys.size()) {
    const std::size_t leaf = route_leaf(keys[i]);
    std::size_t j = i + 1;
    while (j < keys.size() && route_leaf(keys[j]) == leaf) ++j;
    const std::size_t pending = j - i;

    // Find the smallest window (leaf, parent, ...) whose density after the
    // merge stays within bounds.
    std::size_t height = 0;
    std::size_t win_leaves = 1;
    std::size_t first_leaf = leaf;
    for (;;) {
      std::size_t live = 0;
      for (std::size_t l = first_leaf; l < first_leaf + win_leaves; ++l)
        live += leaf_count_[l];
      const std::size_t win_slots = win_leaves * seg_size_;
      if (static_cast<double>(live + pending) <=
          upper_density(height) * static_cast<double>(win_slots)) {
        // Merge window live keys with the pending run and redistribute.
        std::vector<uint64_t> live_keys =
            collect(first_leaf * seg_size_, (first_leaf + win_leaves) * seg_size_);
        std::vector<uint64_t> merged(live_keys.size() + pending);
        std::merge(live_keys.begin(), live_keys.end(), keys.begin() + i,
                   keys.begin() + j, merged.begin());
        redistribute(merged, first_leaf * seg_size_,
                     (first_leaf + win_leaves) * seg_size_);
        size_ += pending;
        refresh_metadata(first_leaf, win_leaves);
        break;
      }
      STG_CHECK(win_leaves < num_leaves(),
                "root window overflow should have been handled by resize");
      ++height;
      win_leaves *= 2;
      first_leaf = (first_leaf / win_leaves) * win_leaves;
    }
    i = j;
  }
  return inserted;
}

std::size_t Pma::erase_batch(std::vector<uint64_t> keys) {
  if (keys.empty()) return 0;
  device::radix_sort(keys);
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  std::size_t removed = 0;

  // Phase 1: blank matching slots in place (order is preserved). Fences
  // are left stale-high, which routing tolerates; counts are maintained
  // incrementally.
  for (uint64_t key : keys) {
    const std::size_t pos = lower_bound_slot(key);
    if (pos < capacity() && slots_[pos] == key) {
      slots_[pos] = kEmptyKey;
      mark_dirty(pos, pos + 1);
      --size_;
      ++removed;
      const std::size_t leaf = pos / seg_size_;
      STG_DCHECK(leaf_count_[leaf] > 0, "leaf count underflow");
      --leaf_count_[leaf];
    }
  }
  if (removed == 0) return 0;

  // Phase 2: fix density violations bottom-up; shrink at root underflow.
  if (static_cast<double>(size_) <
      lower_density(tree_height()) * static_cast<double>(capacity())) {
    std::size_t cap = capacity();
    while (cap > kMinCapacity &&
           static_cast<double>(size_) < kRhoRoot * static_cast<double>(cap)) {
      cap /= 2;
    }
    // Keep room to insert again without an immediate grow.
    while (static_cast<double>(size_) > kTauRoot * static_cast<double>(cap)) {
      cap *= 2;
    }
    rebuild_with_capacity(extract_sorted(), cap);
    return removed;
  }
  for (std::size_t leaf = 0; leaf < num_leaves(); ++leaf) {
    std::size_t height = 0;
    std::size_t win_leaves = 1;
    std::size_t first_leaf = leaf;
    for (;;) {
      std::size_t live = 0;
      for (std::size_t l = first_leaf; l < first_leaf + win_leaves; ++l)
        live += leaf_count_[l];
      const std::size_t win_slots = win_leaves * seg_size_;
      if (static_cast<double>(live) >=
              lower_density(height) * static_cast<double>(win_slots) ||
          win_leaves == num_leaves()) {
        if (height > 0) {
          std::vector<uint64_t> live_keys = collect(
              first_leaf * seg_size_, (first_leaf + win_leaves) * seg_size_);
          redistribute(live_keys, first_leaf * seg_size_,
                       (first_leaf + win_leaves) * seg_size_);
          refresh_metadata(first_leaf, win_leaves);
        }
        break;
      }
      ++height;
      win_leaves *= 2;
      first_leaf = (first_leaf / win_leaves) * win_leaves;
    }
  }
  return removed;
}

bool Pma::contains(uint64_t key) const {
  const std::size_t pos = lower_bound_slot(key);
  return pos < capacity() && slots_[pos] == key;
}

std::size_t Pma::lower_bound_slot(uint64_t key) const {
  if (size_ == 0) return capacity();
  const std::size_t leaf = route_leaf(key);
  // With fresh fences the answer lies inside the routed leaf (its live max
  // is >= key), so the common case is one O(seg_size) scan. Stale-high
  // fences after deletions can route one or more leaves early; hop across
  // whole leaves using the counts instead of scanning slot by slot.
  for (std::size_t l = leaf; l < num_leaves(); ++l) {
    if (leaf_count_[l] == 0) continue;
    for (std::size_t i = l * seg_size_; i < (l + 1) * seg_size_; ++i) {
      if (slots_[i] != kEmptyKey && slots_[i] >= key) return i;
    }
    // A non-empty leaf with no key >= `key` means every key here is
    // smaller; keep moving right.
  }
  return capacity();
}

std::vector<uint64_t> Pma::extract_sorted() const {
  return collect(0, capacity());
}

std::size_t Pma::live_keys_before(std::size_t slot) const {
  slot = std::min(slot, capacity());
  const std::size_t full_leaves = slot / seg_size_;
  std::size_t rank = 0;
  for (std::size_t l = 0; l < full_leaves; ++l) rank += leaf_count_[l];
  for (std::size_t i = full_leaves * seg_size_; i < slot; ++i)
    if (slots_[i] != kEmptyKey) ++rank;
  return rank;
}

std::size_t Pma::first_live_slot_at_or_after(std::size_t slot) const {
  for (std::size_t i = slot; i < capacity(); ++i) {
    if (i % seg_size_ == 0) {
      // Leaf-aligned: hop over empty leaves via the counts.
      std::size_t l = i / seg_size_;
      while (l < num_leaves() && leaf_count_[l] == 0) ++l;
      if (l >= num_leaves()) return capacity();
      i = l * seg_size_;
    }
    if (slots_[i] != kEmptyKey) return i;
  }
  return capacity();
}

bool Pma::check_invariants(std::string* why) const {
  auto fail = [&](const std::string& msg) {
    if (why) *why = msg;
    return false;
  };
  if (capacity() % seg_size_ != 0)
    return fail("capacity not a multiple of segment size");
  // Sortedness + uniqueness + live count.
  uint64_t prev = 0;
  bool have_prev = false;
  std::size_t live = 0;
  for (std::size_t i = 0; i < capacity(); ++i) {
    if (slots_[i] == kEmptyKey) continue;
    ++live;
    if (have_prev && slots_[i] <= prev) {
      std::ostringstream oss;
      oss << "order violated at slot " << i;
      return fail(oss.str());
    }
    prev = slots_[i];
    have_prev = true;
  }
  if (live != size_) return fail("size_ does not match live slot count");
  // Leaf metadata consistency.
  for (std::size_t l = 0; l < num_leaves(); ++l) {
    uint32_t count = 0;
    for (std::size_t i = l * seg_size_; i < (l + 1) * seg_size_; ++i)
      if (slots_[i] != kEmptyKey) ++count;
    if (count != leaf_count_[l]) return fail("stale leaf_count_");
  }
  // Root density within the operating envelope (leaves may transiently
  // exceed leaf bounds right after a routed merge into a parent window, so
  // only the root bound is a hard invariant between batches).
  if (size_ > 0 && static_cast<double>(size_) >
                       kTauRoot * static_cast<double>(capacity()) + seg_size_)
    return fail("root density above upper bound");
  return true;
}

}  // namespace stgraph
