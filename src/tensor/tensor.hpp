// Dense float32 tensor with reverse-mode autograd hooks — the backend the
// STGraph executor drives through the BackendInterface.
//
// Deliberately minimal compared to a full deep-learning framework: tensors
// are always contiguous row-major, float32, rank 1 or 2 (TGNN training
// only needs [N, F] node-feature matrices, [F_in, F_out] weights and
// scalars). Storage bytes are charged to the device MemoryTracker under
// MemCategory::kTensor, which is what the paper's memory figures measure.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "runtime/device_buffer.hpp"

namespace stgraph {

class Rng;

namespace autograd {
class Node;
}

/// Tensor shape: rank 0 (scalar), 1 or 2.
using Shape = std::vector<int64_t>;

struct TensorImpl {
  explicit TensorImpl(Shape shape_in, MemCategory cat = MemCategory::kTensor);

  Shape shape;
  DeviceBuffer<float> data;
  bool requires_grad = false;
  /// Accumulated gradient (lazily allocated, same shape).
  std::shared_ptr<TensorImpl> grad;
  /// Autograd node that produced this tensor (null for leaves).
  std::shared_ptr<autograd::Node> grad_fn;

  int64_t numel() const;
};

/// Value-semantics handle to a shared TensorImpl (like torch.Tensor).
class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(std::shared_ptr<TensorImpl> impl) : impl_(std::move(impl)) {}

  // ---- construction -------------------------------------------------
  static Tensor empty(Shape shape, bool requires_grad = false);
  static Tensor zeros(Shape shape, bool requires_grad = false);
  static Tensor ones(Shape shape, bool requires_grad = false);
  static Tensor full(Shape shape, float value, bool requires_grad = false);
  static Tensor from_vector(const std::vector<float>& values, Shape shape,
                            bool requires_grad = false);
  /// Normal(0, stddev) initialization (Glorot etc. built on top).
  static Tensor randn(Shape shape, Rng& rng, float stddev = 1.0f,
                      bool requires_grad = false);
  static Tensor uniform(Shape shape, Rng& rng, float lo, float hi,
                        bool requires_grad = false);

  // ---- metadata ------------------------------------------------------
  bool defined() const { return impl_ != nullptr; }
  const Shape& shape() const;
  int64_t dim() const;
  int64_t size(int64_t d) const;
  int64_t numel() const;
  /// Rows/cols of a rank-2 tensor (rank-1 treated as [1, n]).
  int64_t rows() const;
  int64_t cols() const;

  // ---- data access ---------------------------------------------------
  float* data();
  const float* data() const;
  float item() const;                 // rank-0/1-element only
  float at(int64_t i) const;          // flat index
  float at(int64_t r, int64_t c) const;
  std::vector<float> to_vector() const;

  // ---- autograd ------------------------------------------------------
  bool requires_grad() const;
  Tensor& set_requires_grad(bool v);
  /// Gradient tensor (undefined handle if no grad accumulated yet).
  Tensor grad() const;
  void zero_grad();
  /// Run reverse-mode AD from this scalar (or with an explicit seed).
  void backward() const;
  void backward(const Tensor& grad_output) const;
  /// A view sharing storage but detached from the autograd graph.
  Tensor detach() const;
  /// Deep copy (no autograd history).
  Tensor clone() const;

  std::shared_ptr<TensorImpl>& impl() { return impl_; }
  const std::shared_ptr<TensorImpl>& impl() const { return impl_; }

  std::string to_string(int64_t max_elems = 16) const;

 private:
  std::shared_ptr<TensorImpl> impl_;
};

/// While alive, newly created ops do not record autograd history
/// (optimizer updates, evaluation passes).
class NoGradGuard {
 public:
  NoGradGuard();
  ~NoGradGuard();
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;
  static bool grad_enabled();

 private:
  bool prev_;
};

/// Shape equality helper with readable failure text.
bool same_shape(const Tensor& a, const Tensor& b);
std::string shape_str(const Shape& s);

}  // namespace stgraph
