// End-to-end integration tests: Algorithm-1 training on every graph
// format, loss parity between STGraph variants and the PyG-T baseline,
// memory behaviour of the State-Stack pruning, and the figure-level
// qualitative claims at miniature scale.
#include <gtest/gtest.h>

#include "baseline/trainer.hpp"
#include "core/trainer.hpp"
#include "datasets/synthetic.hpp"
#include "gpma/gpma_graph.hpp"
#include "graph/naive_graph.hpp"
#include "graph/static_graph.hpp"
#include "runtime/memory_tracker.hpp"
#include "util/rng.hpp"

namespace stgraph {
namespace {

using namespace datasets;

StaticTemporalDataset tiny_static() {
  StaticLoadOptions o;
  o.scale = 1.0;
  o.num_timestamps = 24;
  o.feature_size = 4;
  return load_chickenpox(o);
}

core::TrainConfig regression_config() {
  core::TrainConfig cfg;
  cfg.epochs = 8;
  cfg.sequence_length = 6;
  cfg.lr = 1e-2f;
  cfg.task = core::Task::kNodeRegression;
  return cfg;
}

TEST(Training, StaticTemporalLossDecreases) {
  auto ds = tiny_static();
  StaticTemporalGraph graph(ds.num_nodes, ds.edges, ds.num_timestamps);
  Rng rng(77);
  nn::TGCNRegressor model(ds.signal.feature_size(), 8, rng);
  core::STGraphTrainer trainer(graph, model, ds.signal, regression_config());
  auto stats = trainer.train();
  ASSERT_EQ(stats.size(), 8u);
  EXPECT_LT(stats.back().loss, stats.front().loss * 0.8)
      << "first " << stats.front().loss << " last " << stats.back().loss;
}

TEST(Training, BaselineLossMatchesStgraphPerEpoch) {
  // Same init, same data, same update rule → the two systems compute the
  // same model and must produce near-identical loss trajectories (the
  // paper: "The loss for models compiled with PyG-T and STGraph are
  // similar over all tests").
  auto ds = tiny_static();
  auto cfg = regression_config();
  cfg.epochs = 3;

  StaticTemporalGraph graph(ds.num_nodes, ds.edges, ds.num_timestamps);
  Rng rng_a(5);
  nn::TGCNRegressor st_model(ds.signal.feature_size(), 8, rng_a);
  core::STGraphTrainer st_trainer(graph, st_model, ds.signal, cfg);

  baseline::PygtTemporalGraph bgraph(ds.num_nodes, ds.edges,
                                     ds.num_timestamps);
  Rng rng_b(5);
  baseline::PygTemporalModel bl_model(ds.signal.feature_size(), 8, rng_b,
                                      /*head=*/true);
  // The baseline ignores edge weights in this comparison; give STGraph the
  // same unweighted view by clearing them.
  TemporalSignal unweighted = ds.signal;
  unweighted.edge_weights.clear();
  core::STGraphTrainer st_unweighted(graph, st_model, unweighted, cfg);
  baseline::PygtTrainer bl_trainer(bgraph, bl_model, unweighted, cfg);

  for (int e = 0; e < 3; ++e) {
    const double ls = st_unweighted.train_epoch().loss;
    const double lb = bl_trainer.train_epoch().loss;
    EXPECT_NEAR(ls, lb, std::abs(lb) * 0.02 + 1e-4) << "epoch " << e;
  }
}

EdgeList tiny_stream(uint32_t nodes, std::size_t events, uint64_t seed) {
  Rng rng(seed);
  EdgeList stream;
  for (std::size_t i = 0; i < events; ++i) {
    uint32_t s = static_cast<uint32_t>(rng.next_below(nodes));
    uint32_t d = static_cast<uint32_t>(rng.next_below(nodes));
    if (s == d) d = (d + 1) % nodes;
    stream.emplace_back(s, d);
  }
  return stream;
}

struct DtdgFixture {
  DtdgEvents events;
  TemporalSignal signal;
  core::TrainConfig cfg;
};

DtdgFixture make_dtdg_fixture(uint64_t seed) {
  DtdgFixture f;
  f.events = window_edge_stream(40, tiny_stream(40, 1200, seed), 8.0);
  DynamicLoadOptions o;
  o.feature_size = 4;
  o.link_samples_per_step = 32;
  f.signal = make_dynamic_signal(f.events, o);
  f.cfg.epochs = 4;
  f.cfg.sequence_length = 4;
  f.cfg.lr = 5e-3f;
  f.cfg.task = core::Task::kLinkPrediction;
  return f;
}

TEST(Training, DtdgNaiveLossDecreases) {
  auto f = make_dtdg_fixture(91);
  NaiveGraph graph(f.events);
  Rng rng(7);
  nn::TGCNEncoder model(4, 8, rng);
  core::STGraphTrainer trainer(graph, model, f.signal, f.cfg);
  auto stats = trainer.train();
  EXPECT_LT(stats.back().loss, stats.front().loss);
}

TEST(Training, NaiveAndGpmaComputeIdenticalLosses) {
  // The two DTDG formats are different storage layouts of the same graph;
  // with identical initialization they must train identically.
  auto f = make_dtdg_fixture(93);
  NaiveGraph naive(f.events);
  GpmaGraph gpma(f.events);
  Rng rng_a(21), rng_b(21);
  nn::TGCNEncoder model_a(4, 8, rng_a), model_b(4, 8, rng_b);
  core::STGraphTrainer trainer_a(naive, model_a, f.signal, f.cfg);
  core::STGraphTrainer trainer_b(gpma, model_b, f.signal, f.cfg);
  for (uint32_t e = 0; e < f.cfg.epochs; ++e) {
    const double la = trainer_a.train_epoch().loss;
    const double lb = trainer_b.train_epoch().loss;
    EXPECT_NEAR(la, lb, std::abs(la) * 1e-3 + 1e-5) << "epoch " << e;
  }
}

TEST(Training, GpmaReportsGraphUpdateTime) {
  auto f = make_dtdg_fixture(95);
  GpmaGraph gpma(f.events);
  Rng rng(23);
  nn::TGCNEncoder model(4, 8, rng);
  core::STGraphTrainer trainer(gpma, model, f.signal, f.cfg);
  auto stats = trainer.train_epoch();
  // On-demand snapshot construction must show up in the phase split.
  EXPECT_GT(stats.graph_update_seconds, 0.0);
  EXPECT_GT(stats.gnn_seconds, 0.0);
  EXPECT_LE(stats.graph_update_seconds, stats.seconds);
}

TEST(Training, StateStackPruningReducesPeakStackBytes) {
  auto ds = tiny_static();
  auto cfg = regression_config();
  cfg.epochs = 1;

  auto run = [&](bool pruning) {
    StaticTemporalGraph graph(ds.num_nodes, ds.edges, ds.num_timestamps);
    Rng rng(3);
    nn::TGCNRegressor model(ds.signal.feature_size(), 8, rng);
    cfg.state_pruning = pruning;
    core::STGraphTrainer trainer(graph, model, ds.signal, cfg);
    trainer.train_epoch();
    return trainer.executor().state_stack().peak_device_bytes();
  };
  const std::size_t pruned = run(true);
  const std::size_t unpruned = run(false);
  EXPECT_LT(pruned, unpruned);
}

TEST(Training, EvaluateDoesNotTrain) {
  auto ds = tiny_static();
  StaticTemporalGraph graph(ds.num_nodes, ds.edges, ds.num_timestamps);
  Rng rng(9);
  nn::TGCNRegressor model(ds.signal.feature_size(), 8, rng);
  core::STGraphTrainer trainer(graph, model, ds.signal, regression_config());
  const double e1 = trainer.evaluate();
  const double e2 = trainer.evaluate();
  EXPECT_DOUBLE_EQ(e1, e2);  // no parameter drift from evaluation
}

TEST(Training, GpmaUsesLessGraphMemoryThanNaive) {
  // Figure 8's core claim at miniature scale: at small %-change the
  // on-demand format holds far fewer resident graph bytes.
  DtdgEvents ev = window_edge_stream(60, tiny_stream(60, 4000, 97), 2.0);
  NaiveGraph naive(ev);
  GpmaGraph gpma(ev);
  EXPECT_LT(gpma.device_bytes() * 2, naive.device_bytes());
}

TEST(Training, MismatchedTaskConfigThrows) {
  auto ds = tiny_static();
  StaticTemporalGraph graph(ds.num_nodes, ds.edges, ds.num_timestamps);
  Rng rng(11);
  nn::TGCNRegressor model(ds.signal.feature_size(), 8, rng);
  core::TrainConfig cfg = regression_config();
  cfg.task = core::Task::kLinkPrediction;  // signal has no link samples
  EXPECT_THROW(core::STGraphTrainer(graph, model, ds.signal, cfg), StgError);
}

}  // namespace
}  // namespace stgraph
