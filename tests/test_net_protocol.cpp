// Wire-protocol unit tests: frame encode/decode round trips, torn-stream
// reassembly at every split point, garbage/oversized/CRC-corrupt frame
// rejection, payload parser bounds checking, and the JSON fallback
// request scanner. Pure in-memory — no sockets (see test_serve_net.cpp
// for loopback coverage).
#include <gtest/gtest.h>

#include <cstring>

#include "net/protocol.hpp"
#include "serve/health.hpp"

namespace stgraph {
namespace {

using net::ErrorCode;
using net::Frame;
using net::FrameDecoder;
using net::NetError;
using net::Verb;

Frame make_predict_frame() {
  Frame f;
  f.verb = Verb::kPredict;
  f.tenant = 42;
  f.request_id = 0xDEADBEEFCAFEull;
  f.payload = net::build_predict_request({3, 1, 4, 1, 5});
  return f;
}

TEST(NetProtocol, FrameRoundTripsThroughTheDecoder) {
  const Frame f = make_predict_frame();
  const std::vector<uint8_t> bytes = net::encode_frame(f);
  ASSERT_EQ(bytes.size(),
            net::kHeaderSize + f.payload.size() + net::kTrailerSize);

  FrameDecoder dec;
  dec.feed(bytes.data(), bytes.size());
  Frame out;
  std::string line;
  ASSERT_EQ(dec.next(&out, &line), FrameDecoder::Status::kFrame);
  EXPECT_EQ(out.verb, Verb::kPredict);
  EXPECT_EQ(out.tenant, 42);
  EXPECT_EQ(out.request_id, 0xDEADBEEFCAFEull);
  EXPECT_EQ(net::parse_predict_request(out.payload),
            (std::vector<uint32_t>{3, 1, 4, 1, 5}));
  EXPECT_EQ(dec.next(&out, &line), FrameDecoder::Status::kNeedMore);
  EXPECT_EQ(dec.buffered(), 0u);
}

TEST(NetProtocol, TornStreamReassemblesAtEverySplitPoint) {
  const Frame f = make_predict_frame();
  const std::vector<uint8_t> bytes = net::encode_frame(f);
  for (std::size_t split = 1; split < bytes.size(); ++split) {
    FrameDecoder dec;
    Frame out;
    std::string line;
    dec.feed(bytes.data(), split);
    ASSERT_EQ(dec.next(&out, &line), FrameDecoder::Status::kNeedMore)
        << "split at " << split;
    dec.feed(bytes.data() + split, bytes.size() - split);
    ASSERT_EQ(dec.next(&out, &line), FrameDecoder::Status::kFrame)
        << "split at " << split;
    EXPECT_EQ(out.request_id, f.request_id);
  }
}

TEST(NetProtocol, BackToBackFramesDecodeIndividually) {
  const Frame a = make_predict_frame();
  Frame b;
  b.verb = Verb::kStats;
  b.request_id = 7;
  std::vector<uint8_t> bytes = net::encode_frame(a);
  const std::vector<uint8_t> second = net::encode_frame(b);
  bytes.insert(bytes.end(), second.begin(), second.end());

  FrameDecoder dec;
  dec.feed(bytes.data(), bytes.size());
  Frame out;
  std::string line;
  ASSERT_EQ(dec.next(&out, &line), FrameDecoder::Status::kFrame);
  EXPECT_EQ(out.verb, Verb::kPredict);
  ASSERT_EQ(dec.next(&out, &line), FrameDecoder::Status::kFrame);
  EXPECT_EQ(out.verb, Verb::kStats);
  EXPECT_EQ(dec.next(&out, &line), FrameDecoder::Status::kNeedMore);
}

TEST(NetProtocol, GarbageIsRejectedImmediately) {
  FrameDecoder dec;
  const char garbage[] = "GET / HTTP/1.1\r\n";
  dec.feed(garbage, sizeof(garbage) - 1);
  Frame out;
  std::string line;
  EXPECT_EQ(dec.next(&out, &line), FrameDecoder::Status::kProtocolError);
  EXPECT_NE(dec.error().find("magic"), std::string::npos);
  // A broken decoder stays broken — the stream has lost framing.
  EXPECT_EQ(dec.next(&out, &line), FrameDecoder::Status::kProtocolError);
}

TEST(NetProtocol, GarbagePrefixFailsFastBeforeAFullHeaderArrives) {
  FrameDecoder dec;
  dec.feed("XY", 2);  // two bytes that already mismatch the magic
  Frame out;
  std::string line;
  EXPECT_EQ(dec.next(&out, &line), FrameDecoder::Status::kProtocolError);
}

TEST(NetProtocol, OversizedFrameIsRejectedAtHeaderParseTime) {
  Frame f = make_predict_frame();
  std::vector<uint8_t> bytes = net::encode_frame(f);
  const uint32_t huge = net::kMaxPayload + 1;
  std::memcpy(bytes.data() + 4, &huge, 4);  // forge payload_len
  FrameDecoder dec;
  // Feed just the header: rejection must not wait for the claimed payload.
  dec.feed(bytes.data(), net::kHeaderSize);
  Frame out;
  std::string line;
  EXPECT_EQ(dec.next(&out, &line), FrameDecoder::Status::kProtocolError);
  EXPECT_NE(dec.error().find("payload"), std::string::npos);
}

TEST(NetProtocol, CorruptPayloadFailsTheCrc) {
  const Frame f = make_predict_frame();
  std::vector<uint8_t> bytes = net::encode_frame(f);
  bytes[net::kHeaderSize + 2] ^= 0x40;  // flip one payload bit
  FrameDecoder dec;
  dec.feed(bytes.data(), bytes.size());
  Frame out;
  std::string line;
  EXPECT_EQ(dec.next(&out, &line), FrameDecoder::Status::kProtocolError);
  EXPECT_NE(dec.error().find("CRC"), std::string::npos);
}

TEST(NetProtocol, PayloadParsersRejectTruncationAndTrailingBytes) {
  // Truncated: predict request claiming 5 ids with 1 present.
  std::vector<uint8_t> p = net::build_predict_request({1});
  p[0] = 5;
  EXPECT_THROW(net::parse_predict_request(p), NetError);

  // Trailing junk after a well-formed request.
  p = net::build_predict_request({1, 2});
  p.push_back(0xAB);
  EXPECT_THROW(net::parse_predict_request(p), NetError);

  // Ingest claiming more additions than the payload holds.
  EdgeDelta delta;
  delta.additions = {{0, 1}};
  std::vector<uint8_t> ing =
      net::build_ingest_request(delta, Tensor::zeros({2, 2}));
  ing[0] = 200;
  EdgeDelta out_delta;
  Tensor out_feat;
  EXPECT_THROW(net::parse_ingest_request(ing, &out_delta, &out_feat),
               NetError);

  // Predict response whose matrix header outruns the payload.
  net::PredictWire wire;
  wire.outputs = Tensor::zeros({2, 3});
  std::vector<uint8_t> resp = net::build_predict_response(wire);
  resp.resize(resp.size() - 4);
  EXPECT_THROW(net::parse_predict_response(resp), NetError);
}

TEST(NetProtocol, TensorDimsThatOverflowTheByteCountAreRejected) {
  // rows = cols = 2^31: the element count is 2^62, and * sizeof(float)
  // wraps to 0 mod 2^64 — a naive bounds check would pass and attempt a
  // 2^62-element allocation. The parser must reject it as a bad request.
  auto put_u32 = [](std::vector<uint8_t>& out, uint32_t v) {
    for (int i = 0; i < 4; ++i)
      out.push_back(static_cast<uint8_t>(v >> (8 * i)));
  };
  std::vector<uint8_t> p;
  put_u32(p, 0);            // no additions
  put_u32(p, 0);            // no deletions
  put_u32(p, 0x80000000u);  // rows
  put_u32(p, 0x80000000u);  // cols
  p.resize(p.size() + 16);  // a little fake "matrix data"
  EdgeDelta delta;
  Tensor feat;
  EXPECT_THROW(net::parse_ingest_request(p, &delta, &feat), NetError);

  // Same header at the front of a predict response.
  std::vector<uint8_t> resp;
  put_u32(resp, 0);                       // time
  resp.resize(resp.size() + 8);           // version
  resp.push_back(0);                      // stale flag
  put_u32(resp, 0x80000000u);
  put_u32(resp, 0x80000000u);
  EXPECT_THROW(net::parse_predict_response(resp), NetError);
}

TEST(NetProtocol, IngestPayloadRoundTrips) {
  EdgeDelta delta;
  delta.additions = {{0, 5}, {3, 4}};
  delta.deletions = {{1, 2}};
  Tensor feats = Tensor::zeros({3, 2});
  for (int i = 0; i < 6; ++i) feats.data()[i] = static_cast<float>(i) * 0.5f;

  const std::vector<uint8_t> p = net::build_ingest_request(delta, feats);
  EdgeDelta d2;
  Tensor f2;
  net::parse_ingest_request(p, &d2, &f2);
  EXPECT_EQ(d2.additions, delta.additions);
  EXPECT_EQ(d2.deletions, delta.deletions);
  ASSERT_EQ(f2.rows(), 3);
  ASSERT_EQ(f2.cols(), 2);
  EXPECT_EQ(std::memcmp(f2.data(), feats.data(), 6 * sizeof(float)), 0);
}

TEST(NetProtocol, ErrorPayloadCarriesTheShedTaxonomy) {
  const std::vector<uint8_t> p =
      net::build_error(ErrorCode::kCircuitOpen, "stale only");
  std::string message;
  EXPECT_EQ(net::parse_error(p, &message), ErrorCode::kCircuitOpen);
  EXPECT_EQ(message, "stale only");
  // Wire codes 0..3 ARE ShedReason values — the taxonomy crosses intact.
  EXPECT_EQ(static_cast<int>(ErrorCode::kQueueFull),
            static_cast<int>(serve::ShedReason::kQueueFull));
  EXPECT_EQ(static_cast<int>(ErrorCode::kDeadlineExpired),
            static_cast<int>(serve::ShedReason::kDeadlineExpired));
  EXPECT_EQ(static_cast<int>(ErrorCode::kDraining),
            static_cast<int>(serve::ShedReason::kDraining));
  EXPECT_EQ(static_cast<int>(ErrorCode::kCircuitOpen),
            static_cast<int>(serve::ShedReason::kCircuitOpen));
}

TEST(NetProtocol, JsonLinesInterleaveWithBinaryFrames) {
  FrameDecoder dec;
  const std::string json = "{\"op\": \"health\"}\n";
  dec.feed(json.data(), json.size());
  const std::vector<uint8_t> frame = net::encode_frame(make_predict_frame());
  dec.feed(frame.data(), frame.size());

  Frame out;
  std::string line;
  ASSERT_EQ(dec.next(&out, &line), FrameDecoder::Status::kJsonLine);
  EXPECT_EQ(line, "{\"op\": \"health\"}");
  ASSERT_EQ(dec.next(&out, &line), FrameDecoder::Status::kFrame);
  EXPECT_EQ(out.verb, Verb::kPredict);
}

TEST(NetProtocol, JsonRequestScannerExtractsTheSupportedKeys) {
  net::JsonRequest req = net::parse_json_request(
      "{\"op\": \"predict\", \"nodes\": [4, 2 , 9], \"tenant\": 3}");
  EXPECT_EQ(req.op, "predict");
  EXPECT_EQ(req.nodes, (std::vector<uint32_t>{4, 2, 9}));
  EXPECT_EQ(req.tenant, 3);

  req = net::parse_json_request("{\"op\": \"stats\"}");
  EXPECT_EQ(req.op, "stats");
  EXPECT_TRUE(req.nodes.empty());

  EXPECT_THROW(net::parse_json_request("{\"nodes\": [1]}"), NetError);
  EXPECT_THROW(net::parse_json_request("{\"op\": \"ingest\"}"), NetError);
  EXPECT_THROW(net::parse_json_request("{\"op\": \"predict\", \"tenant\": "
                                       "999999}"),
               NetError);
  EXPECT_THROW(
      net::parse_json_request("{\"op\": \"predict\", \"nodes\": [1,"),
      NetError);

  // Node ids must land in uint32 exactly: negatives (which strtoul would
  // wrap) and values past 2^32-1 (which a bare cast would truncate to a
  // DIFFERENT node) are rejected, not silently remapped.
  EXPECT_THROW(
      net::parse_json_request("{\"op\": \"predict\", \"nodes\": [-1]}"),
      NetError);
  EXPECT_THROW(net::parse_json_request(
                   "{\"op\": \"predict\", \"nodes\": [4294967296]}"),
               NetError);
  net::JsonRequest max_ok = net::parse_json_request(
      "{\"op\": \"predict\", \"nodes\": [4294967295]}");
  EXPECT_EQ(max_ok.nodes, (std::vector<uint32_t>{4294967295u}));
}

}  // namespace
}  // namespace stgraph
