// Extending STGraph (paper §VI): two extension points in one example —
//   1. registering a custom backend through the factory registry (here an
//      instrumented backend that counts aggregation launches, standing in
//      for the TensorFlow/MXNet backends the paper lists as future work),
//   2. authoring a new vertex-centric layer with the tracing frontend and
//      compiling its forward AND backward kernels without writing any
//      kernel code.
//
// Build & run:  ./build/examples/custom_backend
#include <iostream>

#include "compiler/autodiff.hpp"
#include "compiler/passes.hpp"
#include "compiler/trace.hpp"
#include "core/backend.hpp"
#include "core/executor.hpp"
#include "graph/static_graph.hpp"
#include "util/rng.hpp"

using namespace stgraph;

namespace {

// A delegating backend that counts kernel launches — the smallest useful
// demonstration of the backend seam: framework code never changes.
class CountingBackend final : public core::Backend {
 public:
  std::string name() const override { return "counting"; }
  Tensor tensor_from_host(const std::vector<float>& v, Shape s) const override {
    return inner_->tensor_from_host(v, std::move(s));
  }
  Tensor zeros(Shape s) const override { return inner_->zeros(std::move(s)); }
  void launch_aggregation(const compiler::KernelSpec& spec,
                          const compiler::KernelArgs& args) const override {
    ++launches_;
    inner_->launch_aggregation(spec, args);
  }
  void synchronize() const override { inner_->synchronize(); }
  uint64_t launches() const { return launches_; }

 private:
  std::unique_ptr<core::Backend> inner_ =
      core::BackendRegistry::instance().create("native");
  mutable uint64_t launches_ = 0;
};

}  // namespace

int main() {
  // 1. Factory registration.
  core::BackendRegistry::instance().register_backend(
      "counting", [] { return std::make_unique<CountingBackend>(); });
  std::cout << "registered backends:";
  for (const auto& n : core::BackendRegistry::instance().available())
    std::cout << " " << n;
  std::cout << "\n";
  auto backend = core::BackendRegistry::instance().create("counting");
  auto* counting = static_cast<CountingBackend*>(backend.get());

  // 2. A custom layer's vertex program: weighted mean over in-neighbors
  //    plus a damped self loop (a PageRank-flavoured smoother).
  compiler::Program program = compiler::trace(
      [](compiler::VertexContext& v) -> compiler::AggExpr {
        auto msg = v.constant(0.85f) * v.src_feature(0);
        return v.agg_mean(msg).with_self_loop(v.constant(0.15f));
      });
  std::cout << "\nuser program:  " << program.to_string() << "\n";
  const compiler::Program optimized = compiler::optimize(program);
  std::cout << "optimized:     " << optimized.to_string() << "\n";
  const compiler::Program backward = compiler::differentiate(optimized);
  std::cout << "autodiff:      " << backward.to_string() << "\n";
  const compiler::BackwardNeeds needs = compiler::backward_needs(optimized);
  std::cout << "backward needs forward features? "
            << (needs.input_features ? "yes" : "no — State Stack stays slim")
            << "\n\n";

  // Run the compiled kernels through the custom backend on a toy graph.
  const uint32_t n = 6;
  StaticTemporalGraph graph(
      n, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}, {0, 3}}, 1);
  core::TemporalExecutor exec(graph);
  exec.begin_forward_step(0);
  const SnapshotView& view = exec.forward_view();

  const compiler::KernelSpec fwd = compiler::compile(optimized);
  const compiler::KernelSpec bwd = compiler::compile(backward);
  std::vector<float> x = {1, 2, 3, 4, 5, 6};  // one feature per vertex
  std::vector<float> out(n), grad_in(n), grad_out(n, 1.0f);

  compiler::KernelArgs args;
  args.view = view.in_view;
  args.in_degrees = view.in_degrees;
  const float* inputs[1] = {x.data()};
  args.inputs = inputs;
  args.self_features = x.data();
  args.out = out.data();
  args.num_feats = 1;
  args.producer_is_col = true;
  counting->launch_aggregation(fwd, args);

  args.view = view.out_view;
  const float* ginputs[1] = {grad_out.data()};
  args.inputs = ginputs;
  args.self_features = grad_out.data();
  args.out = grad_in.data();
  args.producer_is_col = false;
  counting->launch_aggregation(bwd, args);

  std::cout << "smoothed values:";
  for (float v : out) std::cout << " " << v;
  std::cout << "\ninput gradients:";
  for (float v : grad_in) std::cout << " " << v;
  std::cout << "\nkernel launches through the counting backend: "
            << counting->launches() << "\n";
  return 0;
}
