#include "gpma/gpma_graph.hpp"

#include <algorithm>
#include <cstring>
#include <string>
#include <string_view>
#include <utility>

#include "graph/csr.hpp"
#include "runtime/analyze.hpp"
#include "runtime/parallel.hpp"
#include "runtime/scan.hpp"
#include "runtime/sort.hpp"
#include "runtime/thread_pool.hpp"
#include "util/check.hpp"
#include "util/logging.hpp"
#include "verify/invariants.hpp"
#include "verify/validate.hpp"

namespace stgraph {
namespace {

// Dirty fraction of the slot array beyond which patching the views in
// place loses to the (parallel) full rebuild.
double rebuild_threshold_from_env() {
  const char* s = std::getenv("STGRAPH_VIEW_REBUILD_THRESHOLD");
  if (!s || !*s) return 0.25;
  char* end = nullptr;
  const double v = std::strtod(s, &end);
  if (end == s || v < 0.0) return 0.25;
  return std::min(v, 1.0);
}

bool pipeline_enabled_from_env() {
  const char* s = std::getenv("STGRAPH_PIPELINE");
  if (!s || !*s) return true;
  return !(std::string_view(s) == "off" || std::string_view(s) == "0" ||
           std::string_view(s) == "false");
}

// Full rebuilds at which the one-shot "incremental path never fires"
// warning triggers (enough refreshes to rule out warmup effects).
constexpr uint64_t kFullRebuildWarnAt = 64;

void copy_buf(DeviceBuffer<uint32_t>& dst, const DeviceBuffer<uint32_t>& src) {
  dst.resize(src.size());
  if (src.size())
    std::memcpy(dst.data(), src.data(), src.size() * sizeof(uint32_t));
}

void copy_buf(DeviceBuffer<float>& dst, const DeviceBuffer<float>& src) {
  dst.resize(src.size());
  if (src.size())
    std::memcpy(dst.data(), src.data(), src.size() * sizeof(float));
}

}  // namespace

void reverse_gpma(uint32_t num_nodes, const DeviceBuffer<uint32_t>& row_offset,
                  const DeviceBuffer<uint32_t>& col,
                  const DeviceBuffer<uint32_t>& eids,
                  const DeviceBuffer<uint32_t>& in_degrees, uint32_t num_edges,
                  DeviceBuffer<uint32_t>& r_row_offset,
                  DeviceBuffer<uint32_t>& r_col,
                  DeviceBuffer<uint32_t>& r_eids) {
  // Line 1: row starts = exclusive prefix sum of the in-degrees.
  r_row_offset.resize(num_nodes + 1);
  const uint32_t total =
      device::exclusive_scan(in_degrees.data(), r_row_offset.data(), num_nodes);
  r_row_offset[num_nodes] = total;
  STG_CHECK(total == num_edges, "in-degree sum ", total, " != edge count ",
            num_edges);

  // Lines 2-3: output arrays (heap capacity is reused across rebuilds).
  r_col.resize(num_edges);
  r_eids.resize(num_edges);
  if (num_edges == 0) return;

  const uint32_t* ro = row_offset.data();
  const uint32_t* pc = col.data();
  const uint32_t* pe = eids.data();
  uint32_t* rc = r_col.data();
  uint32_t* re = r_eids.data();

  // Lines 4-16: scatter sources into their destinations' lists. Every
  // per-destination list comes out in ascending source order: lanes own
  // contiguous source blocks, scan them left to right, and start from a
  // cursor seeded with the scatter extent of all lower lanes. The output
  // is therefore identical for any lane count (and matches the sequential
  // scatter bit for bit) — unlike an atomic fetch_sub cursor, whose list
  // order depends on thread interleaving.
  const unsigned lanes = device::lane_count();
  const bool matrix_too_big =
      static_cast<std::size_t>(lanes) * num_nodes >
      4 * static_cast<std::size_t>(num_edges);
  if (lanes == 1 || num_edges < (1u << 14) || matrix_too_big) {
    std::vector<uint32_t> cursor(r_row_offset.data(),
                                 r_row_offset.data() + num_nodes);
    for (uint32_t v = 0; v < num_nodes; ++v) {
      for (uint32_t j = ro[v]; j < ro[v + 1]; ++j) {
        const uint32_t dst = pc[j];
        if (dst == kSpace) continue;  // line 10: skip gap slots
        const uint32_t loc = cursor[dst]++;
        rc[loc] = v;
        re[loc] = pe[j];
      }
    }
    return;
  }

  // counts[r * num_nodes + d] = edges into d from lane r's source block.
  static thread_local std::vector<uint32_t> counts;
  counts.assign(static_cast<std::size_t>(lanes) * num_nodes, 0);
  uint32_t* cnt_base = counts.data();
  const uint32_t chunk = (num_nodes + lanes - 1) / lanes;
  device::parallel_for_ranges(
      lanes,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t r = lo; r < hi; ++r) {
          uint32_t* cnt = cnt_base + r * num_nodes;
          const uint32_t vb = static_cast<uint32_t>(r) * chunk;
          const uint32_t ve = std::min<uint32_t>(num_nodes, vb + chunk);
          for (uint32_t v = vb; v < ve; ++v)
            for (uint32_t j = ro[v]; j < ro[v + 1]; ++j)
              if (pc[j] != kSpace) ++cnt[pc[j]];
        }
      },
      /*grain=*/1);
  // Turn counts into per-lane cursors: cursor[r][d] = start of d's list +
  // edges into d from lanes < r (a transposed exclusive scan).
  const uint32_t* starts = r_row_offset.data();
  device::parallel_for_ranges(num_nodes, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t d = lo; d < hi; ++d) {
      uint32_t run = starts[d];
      for (unsigned r = 0; r < lanes; ++r) {
        const uint32_t c = cnt_base[r * num_nodes + d];
        cnt_base[r * num_nodes + d] = run;
        run += c;
      }
    }
  });
  device::parallel_for_ranges(
      lanes,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t r = lo; r < hi; ++r) {
          uint32_t* cursor = cnt_base + r * num_nodes;
          const uint32_t vb = static_cast<uint32_t>(r) * chunk;
          const uint32_t ve = std::min<uint32_t>(num_nodes, vb + chunk);
          for (uint32_t v = vb; v < ve; ++v)
            for (uint32_t j = ro[v]; j < ro[v + 1]; ++j) {
              const uint32_t dst = pc[j];
              if (dst == kSpace) continue;
              const uint32_t loc = cursor[dst]++;
              rc[loc] = v;
              re[loc] = pe[j];
            }
        }
      },
      /*grain=*/1);
}

GpmaGraph::GpmaGraph(const DtdgEvents& events)
    : num_nodes_(events.num_nodes),
      col_(0, MemCategory::kPma),
      eids_(0, MemCategory::kPma),
      row_offset_(0, MemCategory::kPma),
      fwd_order_(0, MemCategory::kPma),
      bwd_order_(0, MemCategory::kPma),
      r_row_offset_(0, MemCategory::kGraph),
      r_col_(0, MemCategory::kGraph),
      r_eids_(0, MemCategory::kGraph),
      gcn_coef_(0, MemCategory::kGraph),
      gcn_coef_scratch_(0, MemCategory::kGraph),
      r_row_offset_scratch_(0, MemCategory::kGraph),
      r_col_scratch_(0, MemCategory::kGraph),
      r_eids_scratch_(0, MemCategory::kGraph),
      order_scratch_(0, MemCategory::kPma),
      rebuild_threshold_(rebuild_threshold_from_env()) {
  // Base snapshot: one batch insert of all base edges.
  std::vector<uint64_t> base_keys;
  base_keys.reserve(events.base_edges.size());
  std::vector<uint32_t> in_deg(num_nodes_, 0), out_deg(num_nodes_, 0);
  for (const auto& [s, d] : events.base_edges) {
    base_keys.push_back(make_edge_key(s, d));
    ++out_deg[s];
    ++in_deg[d];
  }
  const std::size_t inserted = pma_.insert_batch(std::move(base_keys));
  STG_CHECK(inserted == events.base_edges.size(),
            "base edge list contains duplicates");
  in_deg_ = DeviceBuffer<uint32_t>(in_deg, MemCategory::kPma);
  out_deg_ = DeviceBuffer<uint32_t>(out_deg, MemCategory::kPma);

  // Upload deltas (this is the entire per-timestamp structural storage —
  // the memory win over NaiveGraph).
  edges_at_.push_back(static_cast<uint32_t>(events.base_edges.size()));
  deltas_.reserve(events.deltas.size());
  for (const EdgeDelta& d : events.deltas) {
    DeviceDelta dd;
    std::vector<uint64_t> add, del;
    add.reserve(d.additions.size());
    del.reserve(d.deletions.size());
    for (const auto& [s, dn] : d.additions) add.push_back(make_edge_key(s, dn));
    for (const auto& [s, dn] : d.deletions) del.push_back(make_edge_key(s, dn));
    dd.additions = DeviceBuffer<uint64_t>(add, MemCategory::kGraph);
    dd.deletions = DeviceBuffer<uint64_t>(del, MemCategory::kGraph);
    edges_at_.push_back(edges_at_.back() +
                        static_cast<uint32_t>(add.size()) -
                        static_cast<uint32_t>(del.size()));
    deltas_.push_back(std::move(dd));
  }
  num_shards_cfg_ = resolve_shard_count(num_nodes_);
  pipeline_enabled_ = pipeline_enabled_from_env();
  refresh_views();
}

GpmaGraph::~GpmaGraph() {
  if (!worker_.joinable()) return;
  {
    MutexLock lock(pmu_);
    // Let an in-flight prepare() finish: it holds pointers into live
    // members that must outlive it, and join() below only returns after
    // the loop observes pf_stop_.
    pf_stop_ = true;
    pcv_.notify_all();
  }
  if (analyze::armed()) analyze::on_blocking_call("thread-join");
  worker_.join();
}

void GpmaGraph::append_delta(const EdgeDelta& delta) {
  sync();  // the worker reads deltas_/edges_at_ while positioning
  // Validate everything before mutating: after the push_backs below the
  // new timestamp is committed and the PMA will replay it on demand.
  for (const auto& [s, d] : delta.additions)
    STG_CHECK(s < num_nodes_ && d < num_nodes_, "appended delta adds edge (",
              s, ",", d, ") outside the ", num_nodes_, "-node graph");
  for (const auto& [s, d] : delta.deletions)
    STG_CHECK(s < num_nodes_ && d < num_nodes_,
              "appended delta deletes edge (", s, ",", d, ") outside the ",
              num_nodes_, "-node graph");
  const uint32_t prev_edges = edges_at_.back();
  STG_CHECK(prev_edges + delta.additions.size() >= delta.deletions.size(),
            "appended delta deletes more edges (", delta.deletions.size(),
            ") than the snapshot holds (", prev_edges, " + ",
            delta.additions.size(), " additions)");

  DeviceDelta dd;
  std::vector<uint64_t> add, del;
  add.reserve(delta.additions.size());
  del.reserve(delta.deletions.size());
  for (const auto& [s, d] : delta.additions) add.push_back(make_edge_key(s, d));
  for (const auto& [s, d] : delta.deletions) del.push_back(make_edge_key(s, d));
  dd.additions = DeviceBuffer<uint64_t>(add, MemCategory::kGraph);
  dd.deletions = DeviceBuffer<uint64_t>(del, MemCategory::kGraph);
  edges_at_.push_back(prev_edges + static_cast<uint32_t>(add.size()) -
                      static_cast<uint32_t>(del.size()));
  deltas_.push_back(std::move(dd));
}

uint32_t GpmaGraph::num_edges_at(uint32_t t) const {
  STG_CHECK(t < edges_at_.size(), "timestamp ", t, " out of range ",
            edges_at_.size());
  return edges_at_[t];
}

void GpmaGraph::apply_delta(uint32_t idx, bool forward) {
  // Rolling forward over delta idx applies (erase deletions, insert
  // additions); rolling backward inverts it.
  const DeviceDelta& d = deltas_[idx];
  const auto& to_erase = forward ? d.deletions : d.additions;
  const auto& to_insert = forward ? d.additions : d.deletions;
  const std::size_t erased = pma_.erase_batch(to_erase.to_host());
  const std::size_t inserted = pma_.insert_batch(to_insert.to_host());
  STG_CHECK(erased == to_erase.size() && inserted == to_insert.size(),
            "delta ", idx, " did not apply cleanly (erase ", erased, "/",
            to_erase.size(), ", insert ", inserted, "/", to_insert.size(),
            ")");
  // Incremental degree maintenance + view-delta bookkeeping (the STG_CHECK
  // above guarantees every listed key really hit the PMA, so the pending
  // lists mirror the slot-array mutations exactly).
  for (uint64_t k : to_erase) {
    --out_deg_[edge_key_src(k)];
    --in_deg_[edge_key_dst(k)];
    pending_del_.push_back(k);
  }
  for (uint64_t k : to_insert) {
    ++out_deg_[edge_key_src(k)];
    ++in_deg_[edge_key_dst(k)];
    pending_add_.push_back(k);
  }
  ++delta_replays_;
}

void GpmaGraph::save_cache() {
  cache_pma_ = pma_.clone();
  cache_in_deg_ = in_deg_.to_host();
  cache_out_deg_ = out_deg_.to_host();
  cache_time_ = curr_time_;
}

void GpmaGraph::restore_cache() {
  pma_ = cache_pma_->clone();
  std::copy(cache_in_deg_.begin(), cache_in_deg_.end(), in_deg_.data());
  std::copy(cache_out_deg_.begin(), cache_out_deg_.end(), out_deg_.data());
  curr_time_ = cache_time_;
  views_fresh_ = false;
  // The restored PMA's slot layout has nothing to do with the one the
  // current views were built from (its dirty bitmap describes mutations
  // relative to a different history), so the next refresh must not trust
  // the pending lists. Full rebuild only.
  views_force_full_ = true;
  pending_add_.clear();
  pending_del_.clear();
}

void GpmaGraph::position(uint32_t target) {
  STG_CHECK(target < num_timestamps(), "timestamp ", target, " out of range ",
            num_timestamps());
  if (target == curr_time_) return;
  ++live_epoch_;  // any movement ends published snapshots' byte-equality
  if (target < curr_time_) {
    // First backward roll of a sequence: cache the furthest-forward state
    // so the next sequence's forward pass resumes from it instead of
    // replaying every delta (Algorithm 2 lines 1-5 / line 10).
    if (cache_enabled_ && (!cache_pma_ || cache_time_ < curr_time_))
      save_cache();
    while (curr_time_ > target) {
      apply_delta(curr_time_ - 1, /*forward=*/false);
      --curr_time_;
    }
  } else {
    if (cache_enabled_ && cache_pma_ && cache_time_ <= target &&
        cache_time_ > curr_time_) {
      restore_cache();
    }
    while (curr_time_ < target) {
      apply_delta(curr_time_, /*forward=*/true);
      ++curr_time_;
    }
  }
  views_fresh_ = false;
}

void GpmaGraph::refresh_views() {
  bool incremental = false;
  if (incremental_views_enabled_ && !views_force_full_ &&
      !pma_.dirty_global() && col_.size() == pma_.capacity() &&
      row_offset_.size() == static_cast<std::size_t>(num_nodes_) + 1) {
    incremental = incremental_update();
  }
  if (incremental) {
    ++incremental_view_updates_;
  } else {
    full_rebuild_views();
    ++full_view_rebuilds_;
  }
  pending_add_.clear();
  pending_del_.clear();
  pma_.clear_dirty();
  views_force_full_ = false;
  views_fresh_ = true;
  rebuild_shard_plan();

  // The PR-3 incremental machinery is pure overhead if every refresh takes
  // the rebuild path (the per-graph churn blows past the threshold). Say so
  // once, with the knob to turn.
  if (!warned_full_rebuilds_ && incremental_views_enabled_ &&
      incremental_view_updates_ == 0 &&
      full_view_rebuilds_ >= kFullRebuildWarnAt) {
    warned_full_rebuilds_ = true;
    STG_LOG_WARN << "gpma: all " << full_view_rebuilds_
                 << " view refreshes took the full-rebuild path; per-step "
                    "churn exceeds the incremental threshold ("
                 << rebuild_threshold_
                 << ") — raise it via set_rebuild_threshold() / "
                    "STGRAPH_VIEW_REBUILD_THRESHOLD or expect no benefit "
                    "from incremental views on this graph";
  }

  // STGRAPH_VALIDATE: audit the freshly patched (or rebuilt) views against
  // the PMA before any kernel consumes them, so a bad incremental patch
  // fails here rather than as a wrong gradient downstream.
  if (verify::validation_enabled()) {
    const SnapshotView v = make_view();
    verify::Report r = verify::check_snapshot_view(v);
    r.merge(verify::check_pma(pma_));
    r.merge(verify::check_pma_view_agreement(pma_, v));
    verify::require_ok(r, "GpmaGraph::refresh_views(t=" +
                              std::to_string(curr_time_) + ")");
  }
}

void GpmaGraph::full_rebuild_views() {
  const std::size_t cap = pma_.capacity();
  const uint32_t m = static_cast<uint32_t>(pma_.size());
  const uint32_t n = num_nodes_;

  // Edge relabelling in slot order (Algorithm 2 line 8) + the dst/eid slot
  // arrays + row offsets over slot positions. Buffers are resized in
  // place; their heap capacity persists across refreshes.
  col_.resize(cap);
  eids_.resize(cap);
  row_offset_.resize(static_cast<std::size_t>(n) + 1);
  const uint64_t* slots = pma_.slots().data();
  uint32_t* pc = col_.data();
  uint32_t* pe = eids_.data();
  uint32_t* ro = row_offset_.data();

  const unsigned lanes = device::lane_count();
  if (lanes == 1 || cap < (1u << 14)) {
    uint32_t next_eid = 0;
    uint32_t next_row = 0;
    for (std::size_t i = 0; i < cap; ++i) {
      if (slots[i] == Pma::kEmptyKey) {
        pc[i] = kSpace;
        pe[i] = kSpace;
        continue;
      }
      const uint32_t src = edge_key_src(slots[i]);
      while (next_row <= src) ro[next_row++] = static_cast<uint32_t>(i);
      pc[i] = edge_key_dst(slots[i]);
      pe[i] = next_eid++;
    }
    while (next_row <= n) ro[next_row++] = static_cast<uint32_t>(cap);
    STG_CHECK(next_eid == m, "relabel pass saw ", next_eid,
              " edges, expected ", m);
  } else {
    // Parallel relabel: per-range live counts, a prefix sum into per-range
    // edge-id bases, then an independent fill per range. The row-offset
    // boundary writes are disjoint across ranges once each range knows
    // the last live source before it (per-range carry chain).
    const std::size_t R = lanes;
    const std::size_t chunk = (cap + R - 1) / R;
    std::vector<uint32_t> live(R, 0);
    std::vector<int64_t> last_src(R, -1);
    device::parallel_for_ranges(
        R,
        [&](std::size_t lo, std::size_t hi) {
          for (std::size_t r = lo; r < hi; ++r) {
            const std::size_t b = r * chunk, e = std::min(cap, b + chunk);
            uint32_t cnt = 0;
            int64_t last = -1;
            for (std::size_t i = b; i < e; ++i)
              if (slots[i] != Pma::kEmptyKey) {
                ++cnt;
                last = edge_key_src(slots[i]);
              }
            live[r] = cnt;
            last_src[r] = last;
          }
        },
        /*grain=*/1);
    std::vector<uint32_t> base(R + 1, 0);
    for (std::size_t r = 0; r < R; ++r) base[r + 1] = base[r] + live[r];
    STG_CHECK(base[R] == m, "relabel pass saw ", base[R], " edges, expected ",
              m);
    std::vector<int64_t> carry(R, -1);  // last live src strictly before range r
    for (std::size_t r = 1; r < R; ++r)
      carry[r] = last_src[r - 1] >= 0 ? last_src[r - 1] : carry[r - 1];
    const int64_t global_last =
        last_src[R - 1] >= 0 ? last_src[R - 1] : carry[R - 1];
    device::parallel_for_ranges(
        R,
        [&](std::size_t lo, std::size_t hi) {
          for (std::size_t r = lo; r < hi; ++r) {
            const std::size_t b = r * chunk, e = std::min(cap, b + chunk);
            uint32_t eid = base[r];
            int64_t prev = carry[r];
            for (std::size_t i = b; i < e; ++i) {
              if (slots[i] == Pma::kEmptyKey) {
                pc[i] = kSpace;
                pe[i] = kSpace;
                continue;
              }
              const uint32_t src = edge_key_src(slots[i]);
              for (int64_t v = prev + 1; v <= src; ++v)
                ro[v] = static_cast<uint32_t>(i);
              prev = src;
              pc[i] = edge_key_dst(slots[i]);
              pe[i] = eid++;
            }
          }
        },
        /*grain=*/1);
    for (int64_t v = global_last + 1; v <= static_cast<int64_t>(n); ++v)
      ro[v] = static_cast<uint32_t>(cap);
  }

  // Degree-sorted processing orders (paper Figure 3 auxiliary node_ids).
  const uint32_t* ind = in_deg_.data();
  const uint32_t* outd = out_deg_.data();
  const auto fwd = device::sort_indices(
      n, [ind](uint32_t a, uint32_t b) { return ind[a] > ind[b]; });
  const auto bwd = device::sort_indices(
      n, [outd](uint32_t a, uint32_t b) { return outd[a] > outd[b]; });
  fwd_order_.resize(n);
  bwd_order_.resize(n);
  if (n) {
    std::memcpy(fwd_order_.data(), fwd.data(), n * sizeof(uint32_t));
    std::memcpy(bwd_order_.data(), bwd.data(), n * sizeof(uint32_t));
  }

  // Algorithm 3: compacted reverse CSR for the forward pass.
  reverse_gpma(n, row_offset_, col_, eids_, in_deg_, m, r_row_offset_, r_col_,
               r_eids_);

  // Per-snapshot GCN-norm cache, consumed by the kernel engine.
  rebuild_coef_cache();
}

void GpmaGraph::rebuild_coef_cache() {
  if (!coef_cache_enabled_) {
    gcn_coef_.resize(0);
    return;
  }
  const uint32_t m = static_cast<uint32_t>(pma_.size());
  gcn_coef_.resize(m);
  const uint32_t* rro = r_row_offset_.data();
  const uint32_t* rc = r_col_.data();
  const uint32_t* re = r_eids_.data();
  const uint32_t* ind = in_deg_.data();
  float* gc = gcn_coef_.data();
  device::parallel_for_ranges(num_nodes_, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t v = lo; v < hi; ++v) {
      const uint32_t dv = ind[v];
      for (uint32_t j = rro[v]; j < rro[v + 1]; ++j)
        gc[re[j]] = gcn_norm_coef(ind[rc[j]], dv);
    }
  });
}

void GpmaGraph::set_coef_cache_enabled(bool enabled) {
  sync();
  coef_cache_enabled_ = enabled;
  if (!enabled) {
    gcn_coef_.resize(0);
    gcn_coef_scratch_.resize(0);
  } else if (views_fresh_) {
    rebuild_coef_cache();
  }
  // Published copies carry the old cache setting; drop them.
  pub_[0].valid = false;
  pub_[1].valid = false;
}

void GpmaGraph::set_rebuild_threshold(double threshold) {
  sync();
  rebuild_threshold_ = std::clamp(threshold, 0.0, 1.0);
  warned_full_rebuilds_ = false;
}

void GpmaGraph::set_pipeline_enabled(bool enabled) {
  sync();
  pipeline_enabled_ = enabled;
}

void GpmaGraph::set_num_shards(uint32_t shards) {
  sync();
  num_shards_cfg_ = shards == 0 ? resolve_shard_count(num_nodes_)
                                : std::min(shards, std::max(num_nodes_, 1u));
  if (views_fresh_) rebuild_shard_plan();
  pub_[0].valid = false;
  pub_[1].valid = false;
}

void GpmaGraph::rebuild_shard_plan() {
  live_shards_ =
      build_shard_plan(num_nodes_, in_deg_.data(), out_deg_.data(),
                       fwd_order_.data(), bwd_order_.data(), num_shards_cfg_);
}

void GpmaGraph::repair_order(DeviceBuffer<uint32_t>& order, const uint32_t* deg,
                             std::vector<uint32_t>& affected) {
  // `order` is sorted under (deg desc, id asc) for the degrees of the last
  // refresh; only the vertices in `affected` changed degree. Dropping them
  // from the stream keeps it sorted, so one merge against the (sorted)
  // affected list restores the canonical order. The order is a strict
  // total order (ties broken by id), so the result is exactly what a full
  // sort would produce.
  const uint32_t n = num_nodes_;
  auto canon = [deg](uint32_t a, uint32_t b) {
    return deg[a] != deg[b] ? deg[a] > deg[b] : a < b;
  };
  std::sort(affected.begin(), affected.end(), canon);
  if (order_mark_.size() < n) order_mark_.assign(n, 0);
  for (uint32_t v : affected) order_mark_[v] = 1;
  order_scratch_.resize(n);
  const uint32_t* src = order.data();
  uint32_t* out = order_scratch_.data();
  std::size_t ai = 0, w = 0, skipped = 0;
  for (uint32_t i = 0; i < n; ++i) {
    // Once every affected vertex is re-inserted and every marked survivor
    // dropped, positions align (w == i) and the tail is already in place.
    if (ai == affected.size() && skipped == ai) {
      std::memcpy(out + w, src + i, (n - i) * sizeof(uint32_t));
      w += n - i;
      break;
    }
    const uint32_t v = src[i];
    if (order_mark_[v]) {
      ++skipped;  // re-inserted from `affected`
      continue;
    }
    while (ai < affected.size() && canon(affected[ai], v))
      out[w++] = affected[ai++];
    out[w++] = v;
  }
  while (ai < affected.size()) out[w++] = affected[ai++];
  STG_CHECK(w == n, "order repair wrote ", w, " of ", n, " vertices");
  std::swap(order, order_scratch_);
  for (uint32_t v : affected) order_mark_[v] = 0;
}

bool GpmaGraph::incremental_update() {
  const std::size_t cap = pma_.capacity();
  const std::size_t seg = pma_.segment_size();
  const uint32_t n = num_nodes_;
  const uint32_t old_m = static_cast<uint32_t>(r_col_.size());
  const uint32_t new_m = static_cast<uint32_t>(pma_.size());

  // ---- dirty windows: merged runs of dirty leaf segments ----------------
  struct Window {
    std::size_t lo, hi;           // slot range (leaf-aligned)
    uint32_t new_rank, old_rank;  // label of the window's first live slot
    uint32_t new_live, old_live;  // live slots inside, after/before
  };
  const auto& dl = pma_.dirty_leaves();
  std::vector<Window> windows;
  std::size_t dirty_slots = 0;
  for (std::size_t l = 0; l < dl.size();) {
    if (!dl[l]) {
      ++l;
      continue;
    }
    std::size_t r = l;
    while (r < dl.size() && dl[r]) ++r;
    windows.push_back({l * seg, r * seg, 0, 0, 0, 0});
    dirty_slots += (r - l) * seg;
    l = r;
  }
  if (windows.empty()) {
    // No slot moved. Pending keys would contradict that (every pending key
    // blanked or redistributed a slot), so treat the mismatch as
    // unpatchable instead of trusting either record.
    return pending_add_.empty() && pending_del_.empty();
  }
  if (static_cast<double>(dirty_slots) >
      rebuild_threshold_ * static_cast<double>(cap))
    return false;

  // ---- per-window label ranks -------------------------------------------
  // New first-label of each window from one pass over the per-leaf live
  // counts; old first-label derived from it and the cumulative live-count
  // delta of the preceding windows (slots outside windows are untouched,
  // so their live counts cancel).
  {
    const auto& lc = pma_.leaf_counts();
    std::size_t leaf = 0;
    uint32_t prefix = 0;
    int64_t cum = 0;
    for (Window& w : windows) {
      for (; leaf < w.lo / seg; ++leaf) prefix += lc[leaf];
      w.new_rank = prefix;
      for (; leaf < w.hi / seg; ++leaf) prefix += lc[leaf];
      w.new_live = prefix - w.new_rank;
      uint32_t ol = 0;
      for (std::size_t i = w.lo; i < w.hi; ++i)
        ol += col_[i] != kSpace;  // branchless: gaps sit at random positions
      w.old_live = ol;
      w.old_rank =
          static_cast<uint32_t>(static_cast<int64_t>(w.new_rank) - cum);
      cum += static_cast<int64_t>(w.new_live) - static_cast<int64_t>(ol);
    }
    STG_CHECK(cum == static_cast<int64_t>(new_m) - static_cast<int64_t>(old_m),
              "window live-count delta ", cum, " != label-count delta ",
              static_cast<int64_t>(new_m) - static_cast<int64_t>(old_m));
  }

  // ---- capture the windows' old edges (key, old label) ------------------
  // Must happen before any patching: sources come from the old row
  // offsets, labels from the old eids. Live slots in slot order are in key
  // order, and windows are disjoint ascending slot ranges, so the combined
  // capture comes out sorted by key — ready for the diff merge below.
  win_old_keys_.clear();
  win_old_eids_.clear();
  win_old_keys_.reserve(dirty_slots);
  win_old_eids_.reserve(dirty_slots);
  {
    const uint32_t* oro = row_offset_.data();
    for (const Window& w : windows) {
      // Owner of slot i = last row whose old region starts at or before i
      // (empty rows collapse onto the same offset).
      uint32_t src = static_cast<uint32_t>(
                         std::upper_bound(oro, oro + n + 1,
                                          static_cast<uint32_t>(w.lo)) -
                         oro) -
                     1;
      for (std::size_t i = w.lo; i < w.hi; ++i) {
        if (col_[i] == kSpace) continue;
        while (src + 1 < n && oro[src + 1] <= i) ++src;
        win_old_keys_.push_back(make_edge_key(src, col_[i]));
        win_old_eids_.push_back(eids_[i]);
      }
    }
  }

  // ---- patch col_/eids_ inside the windows ------------------------------
  // Same pass records the new (key, label) contents, also sorted by key.
  const uint64_t* slots = pma_.slots().data();
  win_new_keys_.clear();
  win_new_eids_.clear();
  win_new_keys_.reserve(dirty_slots);
  win_new_eids_.reserve(dirty_slots);
  for (const Window& w : windows) {
    uint32_t eid = w.new_rank;
    for (std::size_t i = w.lo; i < w.hi; ++i) {
      if (slots[i] == Pma::kEmptyKey) {
        col_[i] = kSpace;
        eids_[i] = kSpace;
        continue;
      }
      col_[i] = edge_key_dst(slots[i]);
      eids_[i] = eid;
      win_new_keys_.push_back(slots[i]);
      win_new_eids_.push_back(eid);
      ++eid;
    }
    STG_CHECK(eid == w.new_rank + w.new_live, "window relabel saw ",
              eid - w.new_rank, " live slots, leaf counts said ", w.new_live);
  }

  // ---- diff the window contents: remap table + net key delta ------------
  // One two-pointer merge over the sorted captures classifies every window
  // key: present on both sides -> survivor (old label maps to new label),
  // old side only -> net delete, new side only -> net add (with its new
  // label attached — the reverse splice needs it). Every inserted or
  // blanked slot lives in a dirty leaf, so this diff is authoritative; the
  // pending lists are only the cheap emptiness cross-check above.
  // Labels outside the windows move by a per-region constant, which fills
  // the rest of the old-label -> new-label table without touching keys.
  std::vector<uint64_t> net_add, net_del;
  std::vector<uint32_t> net_add_eid;
  eid_remap_.resize(old_m);
  {
    uint32_t* rm = eid_remap_.data();
    // Clean regions: labels [0, first window) keep their value; labels in
    // the region after window k move by the windows' cumulative live-count
    // delta so far.
    int64_t cum = 0;
    uint32_t prev_hi_label = 0;
    for (const Window& w : windows) {
      const uint32_t lo_label = w.old_rank;
      if (cum == 0) {
        for (uint32_t e = prev_hi_label; e < lo_label; ++e) rm[e] = e;
      } else {
        for (uint32_t e = prev_hi_label; e < lo_label; ++e)
          rm[e] = static_cast<uint32_t>(static_cast<int64_t>(e) + cum);
      }
      cum += static_cast<int64_t>(w.new_live) - static_cast<int64_t>(w.old_live);
      prev_hi_label = w.old_rank + w.old_live;
    }
    for (uint32_t e = prev_hi_label; e < old_m; ++e)
      rm[e] = static_cast<uint32_t>(static_cast<int64_t>(e) + cum);

    std::size_t i = 0, j = 0;
    const std::size_t no = win_old_keys_.size(), nn = win_new_keys_.size();
    while (i < no || j < nn) {
      if (j >= nn || (i < no && win_old_keys_[i] < win_new_keys_[j])) {
        rm[win_old_eids_[i]] = kSpace;  // net delete: label disappears
        net_del.push_back(win_old_keys_[i]);
        ++i;
      } else if (i >= no || win_new_keys_[j] < win_old_keys_[i]) {
        net_add.push_back(win_new_keys_[j]);
        net_add_eid.push_back(win_new_eids_[j]);
        ++j;
      } else {
        rm[win_old_eids_[i]] = win_new_eids_[j];  // survivor
        ++i;
        ++j;
      }
    }
  }
  STG_CHECK(old_m + net_add.size() == new_m + net_del.size(),
            "net delta inconsistent: ", old_m, " + ", net_add.size(),
            " adds != ", new_m, " + ", net_del.size(), " dels");

  // ---- shift labels in the untouched regions ----------------------------
  // Every label after window k moves by the cumulative live-count delta of
  // windows 0..k; slots (and hence label positions) there do not move.
  {
    uint32_t* pe = eids_.data();
    int64_t shift = 0;
    for (std::size_t k = 0; k < windows.size(); ++k) {
      shift += static_cast<int64_t>(windows[k].new_live) -
               static_cast<int64_t>(windows[k].old_live);
      const std::size_t lo = windows[k].hi;
      const std::size_t hi =
          (k + 1 < windows.size()) ? windows[k + 1].lo : cap;
      if (shift == 0 || lo >= hi) continue;
      // Branchless select so the loop vectorizes: gap slots sit at random
      // positions, and a data-dependent branch mispredicts on ~every gap.
      // The wrapping uint32 add is exact for live labels (always < 2^31).
      const uint32_t s = static_cast<uint32_t>(shift);
      device::parallel_for_ranges(
          hi - lo, [pe, lo, s](std::size_t b, std::size_t e) {
            for (std::size_t i = lo + b; i < lo + e; ++i) {
              const uint32_t x = pe[i];
              pe[i] = x == kSpace ? x : x + s;
            }
          });
    }
  }

  // ---- repair the row offsets with one forward sweep --------------------
  // Invariant maintained by both paths: row_offset_[v] = first live slot
  // whose source is >= v, else capacity. Rows whose old offset points at
  // an untouched slot are still correct unless an earlier window settled
  // them; rows whose old offset points into a consumed window are stale
  // and resolve to the first live slot of the region being scanned (any
  // untouched live slot past their old offset has source >= the row, since
  // the old array was key-sorted).
  {
    uint32_t* ro = row_offset_.data();
    uint32_t next_row = 0;
    std::size_t prev_hi = 0;
    for (const Window& w : windows) {
      bool have_f = false;
      std::size_t f = cap;
      while (next_row <= n) {
        const uint32_t old_v = ro[next_row];
        if (old_v >= w.lo) break;  // settled by this window or later
        if (old_v >= prev_hi) {    // untouched slot, still the region start
          ++next_row;
          continue;
        }
        if (!have_f) {
          f = pma_.first_live_slot_at_or_after(prev_hi);
          have_f = true;
        }
        if (f >= w.lo) break;  // region empty; the window scan takes over
        ro[next_row++] = static_cast<uint32_t>(f);
      }
      for (std::size_t i = w.lo; i < w.hi; ++i) {
        if (slots[i] == Pma::kEmptyKey) continue;
        const uint32_t src = edge_key_src(slots[i]);
        while (next_row <= src) ro[next_row++] = static_cast<uint32_t>(i);
      }
      prev_hi = w.hi;
    }
    bool have_f = false;
    std::size_t f = cap;
    while (next_row <= n) {
      const uint32_t old_v = ro[next_row];
      if (old_v >= prev_hi) {  // untouched slot (or cap), still correct
        ++next_row;
        continue;
      }
      if (!have_f) {
        f = pma_.first_live_slot_at_or_after(prev_hi);
        have_f = true;
      }
      ro[next_row++] = static_cast<uint32_t>(f);
    }
  }

  // ---- repair the degree-sorted orders ----------------------------------
  // Any endpoint of a net add/delete may have moved; merge them back into
  // the still-sorted survivor stream. A vertex whose changes cancelled
  // (same in-degree as before) re-merges to its old position, so no
  // net-zero filtering is needed.
  // in_aff outlives the block: the coefficient-cache patch at the end of
  // this function recomputes around the same vertex set.
  std::vector<uint32_t> in_aff;
  {
    std::vector<uint32_t> out_aff;
    in_aff.reserve(net_add.size() + net_del.size());
    out_aff.reserve(net_add.size() + net_del.size());
    for (uint64_t k : net_add) {
      in_aff.push_back(edge_key_dst(k));
      out_aff.push_back(edge_key_src(k));
    }
    for (uint64_t k : net_del) {
      in_aff.push_back(edge_key_dst(k));
      out_aff.push_back(edge_key_src(k));
    }
    for (auto* aff : {&in_aff, &out_aff}) {
      std::sort(aff->begin(), aff->end());
      aff->erase(std::unique(aff->begin(), aff->end()), aff->end());
    }
    if (!in_aff.empty()) repair_order(fwd_order_, in_deg_.data(), in_aff);
    if (!out_aff.empty()) repair_order(bwd_order_, out_deg_.data(), out_aff);
  }

  // ---- splice the reverse CSR -------------------------------------------
  {
    // (dst, src)-keyed views of the net delta, sorted by destination; net
    // adds carry their new label so the splice never searches for one.
    std::vector<std::pair<uint64_t, uint32_t>> radd(net_add.size());
    std::vector<uint64_t> rdel(net_del.size());
    for (std::size_t i = 0; i < net_add.size(); ++i)
      radd[i] = {make_edge_key(edge_key_dst(net_add[i]),
                               edge_key_src(net_add[i])),
                 net_add_eid[i]};
    for (std::size_t i = 0; i < net_del.size(); ++i)
      rdel[i] =
          make_edge_key(edge_key_dst(net_del[i]), edge_key_src(net_del[i]));
    std::sort(radd.begin(), radd.end());
    std::sort(rdel.begin(), rdel.end());
    const std::size_t na = radd.size(), nd = rdel.size();

    // Destinations whose lists change structurally. Between two of them a
    // whole block of lists survives verbatim, just offset-shifted.
    std::vector<uint32_t> changed;
    changed.reserve(na + nd);
    for (const auto& [k, e] : radd) changed.push_back(edge_key_src(k));
    for (uint64_t k : rdel) changed.push_back(edge_key_src(k));
    std::sort(changed.begin(), changed.end());
    changed.erase(std::unique(changed.begin(), changed.end()), changed.end());

    // New reverse row offsets = old + running per-destination degree delta.
    r_row_offset_scratch_.resize(static_cast<std::size_t>(n) + 1);
    {
      const uint32_t* oro = r_row_offset_.data();
      uint32_t* nro = r_row_offset_scratch_.data();
      int64_t shift = 0;
      std::size_t ai = 0, di = 0;
      for (uint32_t v = 0; v <= n; ++v) {
        nro[v] = static_cast<uint32_t>(static_cast<int64_t>(oro[v]) + shift);
        if (v < n) {
          while (ai < na && edge_key_src(radd[ai].first) == v) {
            ++shift;
            ++ai;
          }
          while (di < nd && edge_key_src(rdel[di]) == v) {
            --shift;
            ++di;
          }
        }
      }
      STG_CHECK(nro[n] == new_m, "spliced reverse offsets end at ", nro[n],
                ", expected ", new_m);
    }

    // Block copy + per-changed-destination splice. Block b is the run of
    // untouched destinations before the b-th changed one: its lists keep
    // their sources (one memcpy) and only relocate labels through the
    // remap table. Blocks are position-addressed and independent, so the
    // parallel fill is deterministic for any lane count.
    r_col_scratch_.resize(new_m);
    r_eids_scratch_.resize(new_m);
    const uint32_t* oro = r_row_offset_.data();
    const uint32_t* nro = r_row_offset_scratch_.data();
    const uint32_t* oc = r_col_.data();
    const uint32_t* oe = r_eids_.data();
    uint32_t* nc = r_col_scratch_.data();
    uint32_t* ne = r_eids_scratch_.data();
    const uint32_t* rm = eid_remap_.data();
    const std::size_t B = changed.size();
    device::parallel_for_ranges(
        B + 1,
        [&](std::size_t blo, std::size_t bhi) {
          std::size_t ai = 0, di = 0;  // seeded per changed destination
          for (std::size_t b = blo; b < bhi; ++b) {
            const uint32_t dbegin = b == 0 ? 0u : changed[b - 1] + 1;
            const uint32_t dend = b < B ? changed[b] : n;
            const uint32_t o0 = oro[dbegin], o1 = oro[dend];
            const uint32_t n0 = nro[dbegin];
            STG_CHECK(nro[dend] - n0 == o1 - o0, "untouched block [", dbegin,
                      ",", dend, ") changed width");
            if (o1 > o0) {
              std::memcpy(nc + n0, oc + o0,
                          (o1 - o0) * sizeof(uint32_t));
              for (uint32_t j = o0; j < o1; ++j)
                ne[n0 + (j - o0)] = rm[oe[j]];
            }
            if (b == B) continue;
            const uint32_t v = dend;
            const uint64_t vkey = static_cast<uint64_t>(v) << 32;
            ai = static_cast<std::size_t>(
                std::lower_bound(radd.begin(), radd.end(),
                                 std::pair<uint64_t, uint32_t>{vkey, 0u}) -
                radd.begin());
            di = static_cast<std::size_t>(
                std::lower_bound(rdel.begin(), rdel.end(), vkey) -
                rdel.begin());
            std::size_t w = nro[v];
            for (uint32_t j = oro[v]; j < oro[v + 1]; ++j) {
              const uint32_t s = oc[j];
              if (di < nd && edge_key_src(rdel[di]) == v &&
                  edge_key_dst(rdel[di]) == s) {
                ++di;  // edge s -> v net-deleted
                continue;
              }
              while (ai < na && edge_key_src(radd[ai].first) == v &&
                     edge_key_dst(radd[ai].first) < s) {
                nc[w] = edge_key_dst(radd[ai].first);
                ne[w] = radd[ai].second;
                ++w;
                ++ai;
              }
              nc[w] = s;
              ne[w] = rm[oe[j]];
              ++w;
            }
            while (ai < na && edge_key_src(radd[ai].first) == v) {
              nc[w] = edge_key_dst(radd[ai].first);
              ne[w] = radd[ai].second;
              ++w;
              ++ai;
            }
            STG_CHECK(w == nro[v + 1], "splice for destination ", v,
                      " wrote ", w - nro[v], " entries, expected ",
                      nro[v + 1] - nro[v]);
          }
        },
        /*grain=*/16);
    std::swap(r_row_offset_, r_row_offset_scratch_);
    std::swap(r_col_, r_col_scratch_);
    std::swap(r_eids_, r_eids_scratch_);
  }

  // ---- patch the edge-coefficient cache ---------------------------------
  // Survivor labels keep their value (the factor depends only on endpoint
  // in-degrees, which the gather relocates through the remap table); every
  // edge touching a vertex whose in-degree may have changed is recomputed
  // on both sides. in_aff is exactly that vertex set: in-degrees change
  // only through net-added/-deleted edges' destinations. The recomputation
  // matches full_rebuild_views bit for bit — same degrees, same expression.
  if (!coef_cache_enabled_) {
    gcn_coef_.resize(0);
  } else if (gcn_coef_.size() != old_m) {
    rebuild_coef_cache();  // cache was cleared or stale; start over
  } else {
    gcn_coef_scratch_.resize(new_m);
    const uint32_t* rm = eid_remap_.data();
    const float* oldc = gcn_coef_.data();
    float* newc = gcn_coef_scratch_.data();
    device::parallel_for_ranges(old_m, [&](std::size_t lo, std::size_t hi) {
      for (std::size_t e = lo; e < hi; ++e)
        if (rm[e] != kSpace) newc[rm[e]] = oldc[e];
    });
    std::swap(gcn_coef_, gcn_coef_scratch_);
    float* gc = gcn_coef_.data();
    const uint32_t* ind = in_deg_.data();
    // Net adds first: their destination's degree change may have cancelled
    // out, in which case the incident sweep below would not visit them.
    for (std::size_t i = 0; i < net_add.size(); ++i)
      gc[net_add_eid[i]] = gcn_norm_coef(ind[edge_key_src(net_add[i])],
                                         ind[edge_key_dst(net_add[i])]);
    // Then every edge incident to a possibly-changed in-degree, as
    // destination (new reverse CSR rows) and as source (gapped forward
    // rows).
    const uint32_t* rro = r_row_offset_.data();
    const uint32_t* rc = r_col_.data();
    const uint32_t* re = r_eids_.data();
    const uint32_t* ro = row_offset_.data();
    const uint32_t* pc = col_.data();
    const uint32_t* pe = eids_.data();
    for (uint32_t v : in_aff) {
      const uint32_t dv = ind[v];
      for (uint32_t j = rro[v]; j < rro[v + 1]; ++j)
        gc[re[j]] = gcn_norm_coef(ind[rc[j]], dv);
      for (uint32_t j = ro[v]; j < ro[v + 1]; ++j)
        if (pc[j] != kSpace) gc[pe[j]] = gcn_norm_coef(dv, ind[pc[j]]);
    }
  }
  return true;
}

SnapshotView GpmaGraph::get_graph(uint32_t t) {
  if (!pipeline_enabled_) {
    // Serial schedule: replay + refresh inline, views point at the live
    // arrays (zero copies — exactly the pre-pipeline behavior).
    PhaseScope scope(update_timer_);
    {
      PhaseScope pos(position_timer_);
      position(t);
    }
    if (!views_fresh_) {
      PhaseScope view(view_timer_);
      refresh_views();
    }
    return make_view();
  }

  // Pipelined schedule. First reclaim ownership of the live state: wait
  // out any in-flight prefetch (the stall is the un-overlapped remainder
  // of the update phase) and surface a worker error here, where the
  // trainer's failure handling expects graph errors to appear.
  bool worker_delivered = false;
  if (worker_.joinable()) {
    MutexLock lock(pmu_);
    if (pf_state_ == PfState::kPending) {
      PhaseScope stall(stall_timer_);
      while (pf_state_ == PfState::kPending) pcv_.wait(lock);
    }
    if (pf_state_ == PfState::kDone) {
      pf_state_ = PfState::kIdle;
      worker_delivered = true;
    }
    if (pf_error_) {
      std::exception_ptr e = pf_error_;
      pf_error_ = nullptr;
      std::rethrow_exception(e);
    }
  }

  // A published snapshot of timestamp t may serve the request only while
  // the live PMA has not been repositioned since it was published: the
  // snapshot's *edge content* at t is immutable, but the serving contract
  // also promises byte-agreement with the live slot layout, which is
  // path-dependent. An epoch match implies the live PMA is still at t.
  for (int i : {active_pub_, 1 - active_pub_}) {
    if (pub_[i].valid && pub_[i].timestamp == t &&
        pub_[i].live_epoch == live_epoch_) {
      if (worker_delivered && i != active_pub_) ++prefetch_hits_;
      active_pub_ = i;
      return make_view(pub_[active_pub_]);
    }
  }

  // Miss: do the work inline into the standby buffer (the hint was wrong,
  // absent, or this is the first request).
  ++prefetch_misses_;
  prepare(t);
  active_pub_ = 1 - active_pub_;
  return make_view(pub_[active_pub_]);
}

void GpmaGraph::prepare(uint32_t target) {
  PhaseScope scope(update_timer_);
  {
    PhaseScope pos(position_timer_);
    position(target);
  }
  if (!views_fresh_) {
    PhaseScope view(view_timer_);
    refresh_views();
  }
  {
    PhaseScope view(view_timer_);
    publish(pub_[1 - active_pub_]);
  }
}

void GpmaGraph::publish(PublishedView& pub) {
  pub.valid = false;
  copy_buf(pub.col, col_);
  copy_buf(pub.eids, eids_);
  copy_buf(pub.row_offset, row_offset_);
  copy_buf(pub.in_deg, in_deg_);
  copy_buf(pub.out_deg, out_deg_);
  copy_buf(pub.fwd_order, fwd_order_);
  copy_buf(pub.bwd_order, bwd_order_);
  copy_buf(pub.r_row_offset, r_row_offset_);
  copy_buf(pub.r_col, r_col_);
  copy_buf(pub.r_eids, r_eids_);
  copy_buf(pub.gcn_coef, gcn_coef_);
  pub.shards = live_shards_.clone();
  pub.num_edges = static_cast<uint32_t>(pma_.size());
  pub.timestamp = curr_time_;
  pub.live_epoch = live_epoch_;
  pub.valid = true;
}

void GpmaGraph::prefetch(uint32_t t) {
  if (!pipeline_enabled_ || t >= num_timestamps()) return;
  ensure_worker();
  MutexLock lock(pmu_);
  // Staleness bound 1: at most one prefetch in flight, and an unconsumed
  // result keeps its buffer until a get_* claims it.
  if (pf_state_ != PfState::kIdle || pf_error_) return;
  // Already have a servable t (current-epoch snapshot in either buffer)?
  // Nothing to do. Safe to read here: the worker is provably idle while
  // we hold the lock at kIdle.
  if ((pub_[0].valid && pub_[0].timestamp == t &&
       pub_[0].live_epoch == live_epoch_) ||
      (pub_[1].valid && pub_[1].timestamp == t &&
       pub_[1].live_epoch == live_epoch_))
    return;
  pf_target_ = t;
  pf_state_ = PfState::kPending;
  pcv_.notify_all();
}

void GpmaGraph::sync() const {
  if (!worker_.joinable()) return;
  MutexLock lock(pmu_);
  while (pf_state_ == PfState::kPending) pcv_.wait(lock);
  // Leave a completed result published (a later get_* may still hit it)
  // and any error stored for the next get_* to rethrow.
  if (pf_state_ == PfState::kDone) pf_state_ = PfState::kIdle;
}

void GpmaGraph::ensure_worker() {
  if (worker_.joinable()) return;
  worker_ = std::thread([this] { worker_loop(); });
}

void GpmaGraph::worker_loop() {
  // The worker is an auxiliary thread running concurrently with compute on
  // the main thread: it must never launch on the (single-launcher)
  // ThreadPool. ScopedInline makes every parallel primitive it reaches run
  // serially inline — bit-identical views by the any-lane-count contract.
  ThreadPool::ScopedInline inline_guard;
  for (;;) {
    uint32_t target = 0;
    {
      MutexLock lock(pmu_);
      while (pf_state_ != PfState::kPending && !pf_stop_) pcv_.wait(lock);
      if (pf_stop_) return;
      target = pf_target_;
    }
    std::exception_ptr err;
    try {
      prepare(target);
    } catch (...) {
      err = std::current_exception();
    }
    {
      MutexLock lock(pmu_);
      pf_error_ = err;
      pf_state_ = PfState::kDone;
      pcv_.notify_all();
    }
  }
}

namespace {

/// Pointer-pack a SnapshotView from one source of snapshot arrays; shared
/// by the live (serial) and published (pipelined) assembly so the two
/// schedules hand kernels structurally identical views.
SnapshotView assemble_view(
    uint32_t num_nodes, uint32_t num_edges, const DeviceBuffer<uint32_t>& ro,
    const DeviceBuffer<uint32_t>& col, const DeviceBuffer<uint32_t>& eids,
    const DeviceBuffer<uint32_t>& rro, const DeviceBuffer<uint32_t>& rcol,
    const DeviceBuffer<uint32_t>& reids, const DeviceBuffer<uint32_t>& fwd,
    const DeviceBuffer<uint32_t>& bwd, const DeviceBuffer<uint32_t>& ind,
    const DeviceBuffer<uint32_t>& outd, const DeviceBuffer<float>& coef,
    const ShardPlan& shards) {
  SnapshotView v;
  v.num_nodes = num_nodes;
  v.num_edges = num_edges;
  // Forward pass: compacted reverse CSR (in-neighbors).
  v.in_view.num_nodes = num_nodes;
  v.in_view.num_edges = num_edges;
  v.in_view.row_offset = rro.data();
  v.in_view.col_indices = rcol.data();
  v.in_view.eids = reids.data();
  v.in_view.node_ids = fwd.data();
  v.in_view.has_gaps = false;
  // Backward pass: gapped PMA arrays consumed in place.
  v.out_view.num_nodes = num_nodes;
  v.out_view.num_edges = num_edges;
  v.out_view.row_offset = ro.data();
  v.out_view.col_indices = col.data();
  v.out_view.eids = eids.data();
  v.out_view.node_ids = bwd.data();
  v.out_view.has_gaps = true;
  v.in_degrees = ind.data();
  v.out_degrees = outd.data();
  v.gcn_coef = coef.empty() ? nullptr : coef.data();
  shards.annotate(v.in_view, /*forward=*/true);
  shards.annotate(v.out_view, /*forward=*/false);
  return v;
}

}  // namespace

SnapshotView GpmaGraph::make_view() const {
  return assemble_view(num_nodes_, static_cast<uint32_t>(pma_.size()),
                       row_offset_, col_, eids_, r_row_offset_, r_col_,
                       r_eids_, fwd_order_, bwd_order_, in_deg_, out_deg_,
                       gcn_coef_, live_shards_);
}

SnapshotView GpmaGraph::make_view(const PublishedView& pub) const {
  return assemble_view(num_nodes_, pub.num_edges, pub.row_offset, pub.col,
                       pub.eids, pub.r_row_offset, pub.r_col, pub.r_eids,
                       pub.fwd_order, pub.bwd_order, pub.in_deg, pub.out_deg,
                       pub.gcn_coef, pub.shards);
}

SnapshotView GpmaGraph::get_backward_graph(uint32_t t) { return get_graph(t); }

void GpmaGraph::reset_update_stats() {
  sync();
  update_timer_.reset();
  position_timer_.reset();
  view_timer_.reset();
  stall_timer_.reset();
  incremental_view_updates_ = 0;
  full_view_rebuilds_ = 0;
  prefetch_hits_ = 0;
  prefetch_misses_ = 0;
}

std::size_t GpmaGraph::device_bytes() const {
  sync();
  std::size_t total = pma_.device_bytes() + col_.bytes() + eids_.bytes() +
                      row_offset_.bytes() + in_deg_.bytes() + out_deg_.bytes() +
                      fwd_order_.bytes() + bwd_order_.bytes() +
                      r_row_offset_.bytes() + r_col_.bytes() + r_eids_.bytes() +
                      gcn_coef_.bytes() + gcn_coef_scratch_.bytes() +
                      r_row_offset_scratch_.bytes() + r_col_scratch_.bytes() +
                      r_eids_scratch_.bytes() + order_scratch_.bytes() +
                      live_shards_.device_bytes() + pub_[0].device_bytes() +
                      pub_[1].device_bytes();
  for (const DeviceDelta& d : deltas_)
    total += d.additions.bytes() + d.deletions.bytes();
  if (cache_pma_) {
    total += cache_pma_->device_bytes() +
             (cache_in_deg_.size() + cache_out_deg_.size()) * sizeof(uint32_t);
  }
  return total;
}

}  // namespace stgraph
