// Max-aggregation tests: kernel forward vs dense reference, gradient
// routing along argmax edges, the SeastarMaxPoolConv layer end to end,
// and the State-Stack transport of the argmax indices.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "compiler/autodiff.hpp"
#include "compiler/kernel.hpp"
#include "compiler/passes.hpp"
#include "compiler/trace.hpp"
#include "core/executor.hpp"
#include "graph/dtdg.hpp"
#include "graph/naive_graph.hpp"
#include "graph/static_graph.hpp"
#include "nn/max_pool_conv.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"

namespace stgraph {
namespace {

using namespace compiler;

EdgeList random_edges(uint32_t n, int count, uint64_t seed) {
  Rng rng(seed);
  EdgeList edges;
  std::set<std::pair<uint32_t, uint32_t>> seen;
  for (int i = 0; i < count * 4 && static_cast<int>(edges.size()) < count; ++i) {
    uint32_t s = rng.next_below(n), d = rng.next_below(n);
    if (s == d || !seen.insert({s, d}).second) continue;
    edges.emplace_back(s, d);
  }
  return edges;
}

TEST(MaxAgg, TraceAndNeeds) {
  Program p = trace([](VertexContext& v) -> AggExpr {
    return v.agg_max(v.src_feature(0)).with_self_loop(v.constant(1.0f));
  });
  EXPECT_EQ(p.agg, AggKind::kMax);
  BackwardNeeds needs = backward_needs(p);
  EXPECT_TRUE(needs.argmax);
  Program b = differentiate(optimize(p));
  EXPECT_TRUE(b.max_backward);
  EXPECT_NE(b.to_string().find("max_bwd"), std::string::npos);
}

TEST(MaxAgg, MultiTermRejected) {
  Program p = trace([](VertexContext& v) -> AggExpr {
    return v.agg_max(v.src_feature(0) + v.constant(2.0f) * v.src_feature(0));
  });
  EXPECT_THROW(compile(p), StgError);
}

TEST(MaxAgg, ForwardMatchesDenseReference) {
  Rng rng(3);
  const uint32_t n = 25;
  const int64_t F = 5;
  EdgeList edges = random_edges(n, 100, 5);
  StaticTemporalGraph graph(n, edges, 1);
  SnapshotView view = graph.get_graph(0);

  KernelSpec spec = compile(trace([](VertexContext& v) -> AggExpr {
    return v.agg_max(v.src_feature(0)).with_self_loop(v.constant(1.0f));
  }));

  std::vector<float> x(n * F);
  for (auto& v : x) v = rng.normal();
  std::vector<float> out(n * F);
  std::vector<uint32_t> argmax(n * F);

  KernelArgs args;
  args.view = view.in_view;
  args.in_degrees = view.in_degrees;
  const float* inputs[1] = {x.data()};
  args.inputs = inputs;
  args.self_features = x.data();
  args.out = out.data();
  args.argmax_out = argmax.data();
  args.num_feats = F;
  args.producer_is_col = true;
  run_kernel(spec, args);

  // Dense reference: max over in-neighbors and self.
  for (uint32_t v = 0; v < n; ++v) {
    for (int64_t f = 0; f < F; ++f) {
      float best = x[v * F + f];
      uint32_t arg = v;
      for (const auto& [s, d] : edges) {
        if (d != v) continue;
        if (x[s * F + f] > best) {
          best = x[s * F + f];
          arg = s;
        }
      }
      EXPECT_FLOAT_EQ(out[v * F + f], best) << v << "," << f;
      EXPECT_EQ(argmax[v * F + f], arg) << v << "," << f;
    }
  }
}

TEST(MaxAgg, ForwardWithoutArgmaxBufferThrows) {
  KernelSpec spec = compile(trace([](VertexContext& v) -> AggExpr {
    return v.agg_max(v.src_feature(0));
  }));
  std::vector<float> buf(4);
  KernelArgs args;
  args.view.num_nodes = 0;
  const float* inputs[1] = {buf.data()};
  args.inputs = inputs;
  args.out = buf.data();
  args.num_feats = 1;
  EXPECT_THROW(run_kernel(spec, args), StgError);
}

TEST(MaxAgg, IsolatedVertexProducesZeroWithoutSelf) {
  // Vertex 2 has no in-edges and the program has no self term.
  StaticTemporalGraph graph(3, {{0, 1}}, 1);
  SnapshotView view = graph.get_graph(0);
  KernelSpec spec = compile(trace([](VertexContext& v) -> AggExpr {
    return v.agg_max(v.src_feature(0));
  }));
  std::vector<float> x{-5, -6, -7};
  std::vector<float> out(3, 99.0f);
  std::vector<uint32_t> argmax(3);
  KernelArgs args;
  args.view = view.in_view;
  args.in_degrees = view.in_degrees;
  const float* inputs[1] = {x.data()};
  args.inputs = inputs;
  args.out = out.data();
  args.argmax_out = argmax.data();
  args.num_feats = 1;
  args.producer_is_col = true;
  run_kernel(spec, args);
  EXPECT_EQ(out[0], 0.0f);               // no in-neighbors
  EXPECT_EQ(argmax[0], kSpace);
  EXPECT_FLOAT_EQ(out[1], -5.0f);        // from vertex 0 (negative max kept)
  EXPECT_EQ(argmax[1], 0u);
  EXPECT_EQ(out[2], 0.0f);
}

TEST(MaxPoolConv, GradientMatchesFiniteDifference) {
  Rng rng(7);
  const uint32_t n = 12;
  EdgeList edges = random_edges(n, 40, 9);
  StaticTemporalGraph graph(n, edges, 1);
  core::TemporalExecutor exec(graph);
  Rng lrng(11);
  nn::SeastarMaxPoolConv conv(3, 4, lrng);
  Tensor x = Tensor::randn({n, 3}, rng, 1.0f, /*requires_grad=*/true);

  auto loss_fn = [&]() {
    exec.begin_forward_step(0);
    Tensor y = conv.forward(exec, x);
    return ops::sum(ops::mul(y, y));
  };
  Tensor loss = loss_fn();
  loss.backward();
  exec.verify_drained();
  Tensor grad = x.grad();
  ASSERT_TRUE(grad.defined());

  // Finite differences (max is piecewise linear; random data keeps us off
  // the ties, and eps is small enough not to flip argmax winners).
  const float eps = 1e-3f;
  for (int64_t i = 0; i < x.numel(); i += 7) {  // sample entries
    const float orig = x.data()[i];
    NoGradGuard ng;
    x.data()[i] = orig + eps;
    const float up = loss_fn().item();
    x.data()[i] = orig - eps;
    const float down = loss_fn().item();
    x.data()[i] = orig;
    const float fd = (up - down) / (2 * eps);
    EXPECT_NEAR(grad.at(i), fd, 2e-2f * std::max(1.0f, std::abs(fd))) << i;
  }
}

TEST(MaxPoolConv, ArgmaxTravelsThroughStateStack) {
  Rng rng(13);
  const uint32_t n = 8;
  StaticTemporalGraph graph(n, random_edges(n, 20, 15), 1);
  core::TemporalExecutor exec(graph);
  nn::SeastarMaxPoolConv conv(2, 3, rng);
  EXPECT_TRUE(conv.backward_needs().argmax);

  Tensor x = Tensor::randn({n, 2}, rng, 1.0f, true);
  exec.begin_forward_step(0);
  Tensor y = conv.forward(exec, x);
  // Pruned saved set = {X, argmax}: X is n×2 floats, argmax n×3 floats.
  EXPECT_EQ(exec.state_stack().depth(), 1u);
  EXPECT_EQ(exec.state_stack().device_bytes(), (n * 2 + n * 3) * sizeof(float));
  ops::sum(y).backward();
  exec.verify_drained();
}

TEST(MaxPoolConv, TrainsOnDynamicGraph) {
  // Max pooling composed with the DTDG machinery: a tiny link-style task
  // where the conv output must stay finite and differentiable across
  // changing snapshots.
  Rng rng(17);
  EdgeList stream;
  for (int i = 0; i < 600; ++i) {
    uint32_t s = static_cast<uint32_t>(rng.next_below(20));
    uint32_t d = static_cast<uint32_t>(rng.next_below(20));
    if (s == d) d = (d + 1) % 20;
    stream.emplace_back(s, d);
  }
  DtdgEvents ev = window_edge_stream(20, stream, 10.0);
  NaiveGraph graph(ev);
  core::TemporalExecutor exec(graph);
  nn::SeastarMaxPoolConv conv(4, 4, rng);
  Tensor x = Tensor::randn({20, 4}, rng, 1.0f, true);

  const uint32_t T = std::min(4u, graph.num_timestamps());
  Tensor loss;
  for (uint32_t t = 0; t < T; ++t) {
    exec.begin_forward_step(t);
    Tensor y = conv.forward(exec, x);
    Tensor l = ops::mean(ops::mul(y, y));
    loss = loss.defined() ? ops::add(loss, l) : l;
  }
  loss.backward();
  exec.verify_drained();
  EXPECT_TRUE(x.grad().defined());
  for (int64_t i = 0; i < x.grad().numel(); ++i)
    EXPECT_FALSE(std::isnan(x.grad().at(i)));
}

}  // namespace
}  // namespace stgraph
