// Deterministic structure-aware fuzz driver for the byte-level readers:
// the STGN wire-frame decoder, the STGW write-ahead log reader, and the
// STGT training-state container. Each case builds VALID artifacts with the
// production writers, then applies seeded structure-aware mutations — bit
// flips, truncations, length/CRC field tweaks, splices, insertions — and
// requires the readers to either parse or reject cleanly (StgError /
// kProtocolError / torn-tail), never crash, hang, or over-read. The runs
// are fully deterministic (fixed seeds, counter-derived per-iteration
// streams), so a failure reproduces by iteration number.
//
// Iteration counts: modest by default so the driver rides in the normal
// suite; `run_all.sh fuzz-smoke` re-runs it under ASan+UBSan with
// STGRAPH_FUZZ_ITERS raised — that environment override is the only
// nondeterminism, and it only changes how far each stream is driven.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "io/train_state.hpp"
#include "net/protocol.hpp"
#include "serve/wal.hpp"
#include "tensor/tensor.hpp"
#include "util/check.hpp"

namespace stgraph {
namespace {

// ---- deterministic PRNG ---------------------------------------------------

/// splitmix64: tiny, seedable, and good enough to spray mutations. Every
/// iteration derives its own stream from (case seed, iteration), so cases
/// are independent and any single iteration replays in isolation.
struct Rng {
  uint64_t s;
  explicit Rng(uint64_t seed) : s(seed) {}
  uint64_t next() {
    s += 0x9E3779B97F4A7C15ull;
    uint64_t z = s;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }
  /// Uniform in [0, n). n must be > 0.
  std::size_t below(std::size_t n) { return next() % n; }
};

int iterations(int dflt) {
  const char* e = std::getenv("STGRAPH_FUZZ_ITERS");
  if (!e || !*e) return dflt;
  const long v = std::strtol(e, nullptr, 10);
  return v > 0 ? static_cast<int>(v) : dflt;
}

// ---- structure-aware mutations --------------------------------------------

/// One seeded mutation over a byte buffer. Structure-aware in the sense
/// that beyond blind bit flips it targets the framing fields every format
/// here shares: 32-bit little-endian lengths/CRCs at aligned-ish offsets,
/// truncation at arbitrary points (torn writes), and record splices
/// (duplicated or dropped spans).
void mutate(std::vector<uint8_t>& b, Rng& rng) {
  if (b.empty()) return;
  switch (rng.below(7)) {
    case 0: {  // single bit flip
      b[rng.below(b.size())] ^= static_cast<uint8_t>(1u << rng.below(8));
      break;
    }
    case 1: {  // byte overwrite
      b[rng.below(b.size())] = static_cast<uint8_t>(rng.next());
      break;
    }
    case 2: {  // truncate (torn write)
      b.resize(rng.below(b.size()) + 1);
      break;
    }
    case 3: {  // 32-bit field tweak: off-by-one, zero, huge
      if (b.size() < 4) break;
      const std::size_t at = rng.below(b.size() - 3);
      uint32_t v = 0;
      std::memcpy(&v, b.data() + at, 4);
      switch (rng.below(4)) {
        case 0: v += 1; break;
        case 1: v -= 1; break;
        case 2: v = 0; break;
        default: v = 0xFFFFFFFFu; break;
      }
      std::memcpy(b.data() + at, &v, 4);
      break;
    }
    case 4: {  // splice: duplicate a span over another position
      const std::size_t len = rng.below(std::min<std::size_t>(b.size(), 64)) + 1;
      const std::size_t src = rng.below(b.size() - len + 1);
      const std::size_t dst = rng.below(b.size() - len + 1);
      std::memmove(b.data() + dst, b.data() + src, len);
      break;
    }
    case 5: {  // insert garbage (desyncs framing)
      const std::size_t at = rng.below(b.size() + 1);
      const std::size_t len = rng.below(16) + 1;
      std::vector<uint8_t> junk(len);
      for (auto& c : junk) c = static_cast<uint8_t>(rng.next());
      b.insert(b.begin() + static_cast<std::ptrdiff_t>(at), junk.begin(),
               junk.end());
      break;
    }
    default: {  // drop a span (lost record / partial flush)
      const std::size_t len = rng.below(std::min<std::size_t>(b.size(), 64)) + 1;
      const std::size_t at = rng.below(b.size() - len + 1);
      b.erase(b.begin() + static_cast<std::ptrdiff_t>(at),
              b.begin() + static_cast<std::ptrdiff_t>(at + len));
      break;
    }
  }
}

void write_file(const std::string& path, const std::vector<uint8_t>& b) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.good()) << path;
  out.write(reinterpret_cast<const char*>(b.data()),
            static_cast<std::streamsize>(b.size()));
  ASSERT_TRUE(out.good()) << path;
}

std::vector<uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::vector<uint8_t> b((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  return b;
}

// ---- STGN wire frames -----------------------------------------------------

std::vector<uint8_t> valid_frame_stream() {
  std::vector<uint8_t> bytes;
  const auto add = [&](net::Verb verb, uint16_t tenant, uint64_t rid,
                       std::size_t payload_len) {
    net::Frame f;
    f.verb = verb;
    f.tenant = tenant;
    f.request_id = rid;
    f.payload.resize(payload_len);
    for (std::size_t i = 0; i < payload_len; ++i)
      f.payload[i] = static_cast<uint8_t>(i * 31 + 7);
    const std::vector<uint8_t> enc = net::encode_frame(f);
    bytes.insert(bytes.end(), enc.begin(), enc.end());
  };
  add(net::Verb::kPredict, 0, 1, 16);
  add(net::Verb::kIngest, 3, 2, 256);
  add(net::Verb::kStats, 1, 3, 0);
  add(net::Verb::kHealth, 7, 4, 1);
  add(net::Verb::kPredictResp, 0, 5, 64);
  return bytes;
}

/// Drive a decoder over `bytes` in seeded chunk sizes until it needs more
/// input or declares the stream broken. Every outcome is legal except a
/// crash; validity invariants are asserted on whatever decodes.
void drive_decoder(const std::vector<uint8_t>& bytes, Rng& rng) {
  net::FrameDecoder dec;
  std::size_t fed = 0;
  int guard = 0;
  bool dead = false;
  while (fed < bytes.size() && !dead) {
    const std::size_t n = std::min(bytes.size() - fed, rng.below(97) + 1);
    dec.feed(bytes.data() + fed, n);
    fed += n;
    for (;;) {
      ASSERT_LT(++guard, 1 << 20) << "decoder failed to make progress";
      net::Frame f;
      std::string line;
      const net::FrameDecoder::Status st = dec.next(&f, &line);
      if (st == net::FrameDecoder::Status::kNeedMore) break;
      if (st == net::FrameDecoder::Status::kProtocolError) {
        // Stream declared broken: the contract says drop the peer. The
        // decoder must have produced a diagnostic.
        EXPECT_FALSE(dec.error().empty());
        dead = true;
        break;
      }
      if (st == net::FrameDecoder::Status::kFrame)
        EXPECT_LE(f.payload.size(), net::kMaxPayload);
    }
  }
}

TEST(FuzzFormats, StgnDecoderSurvivesMutatedStreams) {
  const std::vector<uint8_t> pristine = valid_frame_stream();
  const int iters = iterations(200);
  for (int i = 0; i < iters; ++i) {
    Rng rng(0x5347544E00000000ull + static_cast<uint64_t>(i));  // "SGTN"|i
    std::vector<uint8_t> bytes = pristine;
    const int n_mut = static_cast<int>(rng.below(4)) + 1;
    for (int m = 0; m < n_mut; ++m) mutate(bytes, rng);
    drive_decoder(bytes, rng);
    if (HasFatalFailure()) FAIL() << "iteration " << i;
  }
}

TEST(FuzzFormats, StgnDecoderReassemblesAtEverySplitPoint) {
  // Pristine stream split at every byte boundary must reassemble to the
  // same five frames — the all-positions version of the torn-read test.
  const std::vector<uint8_t> bytes = valid_frame_stream();
  for (std::size_t split = 1; split < bytes.size(); ++split) {
    net::FrameDecoder dec;
    dec.feed(bytes.data(), split);
    int frames = 0;
    net::Frame f;
    std::string line;
    while (dec.next(&f, &line) == net::FrameDecoder::Status::kFrame) ++frames;
    dec.feed(bytes.data() + split, bytes.size() - split);
    while (dec.next(&f, &line) == net::FrameDecoder::Status::kFrame) ++frames;
    ASSERT_EQ(frames, 5) << "split at byte " << split;
  }
}

// ---- STGW write-ahead log -------------------------------------------------

const char* kFuzzWal = "/tmp/stgraph_fuzz.stgw";
const char* kFuzzWalMut = "/tmp/stgraph_fuzz_mut.stgw";

std::vector<uint8_t> valid_wal_bytes() {
  std::remove(kFuzzWal);
  {
    serve::wal::Writer w(kFuzzWal, /*truncate=*/true, /*sync_every=*/0);
    serve::wal::Record start;
    start.type = serve::wal::RecordType::kStart;
    start.time = 0;
    start.version = 1;
    start.features = Tensor::full({4, 3}, 0.5f);
    start.hidden = Tensor::full({4, 2}, 0.25f);
    w.append(start);
    for (uint32_t t = 1; t <= 3; ++t) {
      serve::wal::Record rec;
      rec.type = serve::wal::RecordType::kIngest;
      rec.time = t;
      rec.version = 1 + t;
      rec.delta.additions.emplace_back(t, (t + 1) % 4);
      if (t == 2) rec.delta.deletions.emplace_back(0, 1);
      rec.features = Tensor::full({4, 3}, 1.0f + static_cast<float>(t));
      w.append(rec);
    }
    w.sync();
  }
  return read_file(kFuzzWal);
}

TEST(FuzzFormats, StgwReaderSurvivesMutatedLogs) {
  const std::vector<uint8_t> pristine = valid_wal_bytes();
  ASSERT_FALSE(pristine.empty());
  {
    // Sanity: the pristine log reads back whole.
    const serve::wal::ReadResult rr = serve::wal::read(kFuzzWal);
    ASSERT_EQ(rr.records.size(), 4u);
    ASSERT_FALSE(rr.torn_tail);
  }
  const int iters = iterations(150);
  for (int i = 0; i < iters; ++i) {
    Rng rng(0x5354475700000000ull + static_cast<uint64_t>(i));  // "STGW"|i
    std::vector<uint8_t> bytes = pristine;
    const int n_mut = static_cast<int>(rng.below(4)) + 1;
    for (int m = 0; m < n_mut; ++m) mutate(bytes, rng);
    write_file(kFuzzWalMut, bytes);
    try {
      const serve::wal::ReadResult rr = serve::wal::read(kFuzzWalMut);
      // Whatever survived the mutation must be internally consistent: the
      // valid prefix never exceeds the file, and every decoded record is a
      // known type.
      EXPECT_LE(rr.valid_bytes, rr.total_bytes) << "iteration " << i;
      EXPECT_EQ(rr.total_bytes, bytes.size()) << "iteration " << i;
      for (const serve::wal::Record& rec : rr.records)
        EXPECT_TRUE(rec.type == serve::wal::RecordType::kStart ||
                    rec.type == serve::wal::RecordType::kIngest)
            << "iteration " << i;
    } catch (const StgError&) {
      // Clean rejection (bad magic/version, unreadable) is a valid outcome.
    }
  }
  std::remove(kFuzzWal);
  std::remove(kFuzzWalMut);
}

// ---- STGT training-state container ----------------------------------------

const char* kFuzzTrain = "/tmp/stgraph_fuzz.stgt";
const char* kFuzzTrainMut = "/tmp/stgraph_fuzz_mut.stgt";

std::vector<uint8_t> valid_train_state_bytes() {
  io::TrainState st;
  st.config_hash = 0xDEADBEEFCAFEF00Dull;
  st.epoch = 2;
  st.next_sequence = 17;
  st.lr = 5e-3f;
  st.optimizer_step_count = 41;
  nn::Parameter p;
  p.name = "layer.weight";
  p.tensor = Tensor::full({3, 5}, 0.125f);
  st.params.push_back(p);
  st.moment1.push_back(Tensor::full({3, 5}, 0.01f));
  st.moment2.push_back(Tensor::full({3, 5}, 0.02f));
  st.hidden = Tensor::full({4, 3}, 0.75f);
  st.epoch_loss_total = 1.5;
  st.epoch_steps = 17;
  io::save_train_state(st, kFuzzTrain);
  return read_file(kFuzzTrain);
}

TEST(FuzzFormats, StgtLoaderSurvivesMutatedContainers) {
  const std::vector<uint8_t> pristine = valid_train_state_bytes();
  ASSERT_FALSE(pristine.empty());
  {
    // Sanity: the pristine container round-trips.
    const io::TrainState st = io::load_train_state(kFuzzTrain);
    ASSERT_EQ(st.epoch, 2u);
    ASSERT_EQ(st.params.size(), 1u);
  }
  const int iters = iterations(150);
  for (int i = 0; i < iters; ++i) {
    Rng rng(0x5354475400000000ull + static_cast<uint64_t>(i));  // "STGT"|i
    std::vector<uint8_t> bytes = pristine;
    const int n_mut = static_cast<int>(rng.below(4)) + 1;
    for (int m = 0; m < n_mut; ++m) mutate(bytes, rng);
    write_file(kFuzzTrainMut, bytes);
    try {
      const io::TrainState st = io::load_train_state(kFuzzTrainMut);
      // A load that slipped past the CRC (mutation landed in slack space,
      // or recomputed to the same checksum — astronomically unlikely but
      // legal) must still be structurally sound.
      EXPECT_EQ(st.moment1.size(), st.params.size()) << "iteration " << i;
      EXPECT_EQ(st.moment2.size(), st.params.size()) << "iteration " << i;
    } catch (const StgError&) {
      // CRC/bounds rejection — the designed outcome for a torn container.
    }
  }
  std::remove(kFuzzTrain);
  std::remove(kFuzzTrainMut);
}

}  // namespace
}  // namespace stgraph
