#include "util/logging.hpp"

#include <cstdlib>
#include <cstring>

#include "runtime/mutex.hpp"

namespace stgraph::log {
namespace {

Level parse_env() {
  const char* e = std::getenv("STGRAPH_LOG");
  if (e == nullptr) return Level::kWarn;
  if (std::strcmp(e, "trace") == 0) return Level::kTrace;
  if (std::strcmp(e, "debug") == 0) return Level::kDebug;
  if (std::strcmp(e, "info") == 0) return Level::kInfo;
  if (std::strcmp(e, "warn") == 0) return Level::kWarn;
  if (std::strcmp(e, "error") == 0) return Level::kError;
  if (std::strcmp(e, "off") == 0) return Level::kOff;
  return Level::kWarn;
}

Level g_level = parse_env();
// stgraph::Mutex (not std::mutex) so the sink serialization is visible to
// both the -Wthread-safety pass and the armed lock-order analyzer: emit()
// is called from arbitrary threads that may hold subsystem locks, and the
// resulting held -> log edge belongs in the acquisition-order graph.
Mutex g_mutex{"log::g_mutex"};

const char* name(Level lvl) {
  switch (lvl) {
    case Level::kTrace: return "TRACE";
    case Level::kDebug: return "DEBUG";
    case Level::kInfo: return "INFO";
    case Level::kWarn: return "WARN";
    case Level::kError: return "ERROR";
    default: return "?";
  }
}

}  // namespace

Level level() { return g_level; }
void set_level(Level lvl) { g_level = lvl; }

namespace detail {
void emit(Level lvl, const std::string& msg) {
  MutexLock lock(g_mutex);
  std::cerr << "[stgraph " << name(lvl) << "] " << msg << "\n";
}
}  // namespace detail

}  // namespace stgraph::log
