// Blocking client for the STGN wire protocol — what the load generator,
// the socket tests and the demo use to talk to a Frontend. One TCP
// connection per Client; requests are synchronous (send frame, read
// frames until the echoed request id comes back). A kError response
// rethrows as NetError carrying the typed wire code, so a shed crossing
// the network is catch-able exactly like a local serve::ShedError.
//
// Thread-compatibility: a Client is NOT thread-safe; give each load
// generator thread its own connection (which is also what an open-loop
// arrival process wants).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/protocol.hpp"

namespace stgraph::net {

class Client {
 public:
  /// Connect (blocking) with an optional per-socket receive timeout.
  Client(const std::string& host, uint16_t port, double timeout_ms = 5000.0);
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;

  /// Throws NetError (typed wire code) on a kError response, StgError on
  /// transport failure.
  PredictWire predict(const std::vector<uint32_t>& nodes = {},
                      uint16_t tenant = 0);
  IngestWire ingest(const EdgeDelta& delta, const Tensor& next_features,
                    uint16_t tenant = 0);
  std::string stats_json();
  std::string health_json();

  /// JSON fallback: send one raw line (newline appended if missing) and
  /// return the response line. Exercises the netcat path end to end.
  std::string json_round_trip(const std::string& line);

  /// Send raw bytes as-is — torn/garbage-frame fuzzing.
  void send_raw(const void* data, std::size_t n);
  /// Read until EOF or timeout; returns everything received (fuzz tests
  /// inspect the error frame / close behaviour).
  std::vector<uint8_t> read_until_close();

  int fd() const { return fd_; }

 private:
  Frame round_trip(Verb verb, uint16_t tenant, std::vector<uint8_t> payload);
  Frame read_frame(uint64_t expect_request_id);
  std::string read_line();

  int fd_ = -1;
  uint64_t next_request_id_ = 1;
  FrameDecoder decoder_;
};

}  // namespace stgraph::net
