// Epidemic forecasting with three temporal architectures — the paper's
// §V-A1 design point in action: TGCN, GConvGRU and GConvLSTM share the
// same spatial building blocks and the same Algorithm-1 trainer; only the
// temporal structure is swapped.
//
// The workload is the Hungary-Chickenpox-style county-level case-count
// dataset. The example trains all three models, evaluates them with the
// metrics module (MAE / RMSE), and round-trips the best model through a
// checkpoint file to show persistence.
//
// Build & run:  ./build/examples/epidemic_models
#include <iomanip>
#include <iostream>

#include "core/trainer.hpp"
#include "datasets/synthetic.hpp"
#include "graph/static_graph.hpp"
#include "io/serialize.hpp"
#include "nn/gconv_gru.hpp"
#include "nn/gconv_lstm.hpp"
#include "nn/metrics.hpp"
#include "nn/models.hpp"
#include "util/rng.hpp"

using namespace stgraph;

namespace {

struct Result {
  std::string name;
  double train_mse;
  double mae;
  double rmse;
  int64_t params;
};

// Final-timestep forecast quality on held-out data.
std::pair<double, double> forecast_metrics(
    nn::TemporalModel& model, StaticTemporalGraph& graph,
    const datasets::TemporalSignal& signal) {
  NoGradGuard ng;
  core::TemporalExecutor exec(graph);
  Tensor state = model.initial_state(signal.features[0].rows());
  Tensor pred;
  for (uint32_t t = 0; t < signal.num_timestamps(); ++t) {
    exec.begin_forward_step(t);
    auto [y, next] = model.step(exec, signal.features[t], state,
                                signal.edge_weights.data());
    pred = y;
    state = next;
  }
  const Tensor& target = signal.targets.back();
  return {nn::metrics::mae(pred, target), nn::metrics::rmse(pred, target)};
}

Result train_and_eval(const std::string& name, nn::TemporalModel& model,
                      StaticTemporalGraph& graph,
                      const datasets::TemporalSignal& signal) {
  core::TrainConfig cfg;
  cfg.epochs = 1;
  cfg.sequence_length = 8;
  cfg.lr = 1e-2f;
  cfg.task = core::Task::kNodeRegression;
  core::STGraphTrainer trainer(graph, model, signal, cfg);
  double loss = 0;
  for (int e = 0; e < 30; ++e) loss = trainer.train_epoch().loss;
  auto [mae, rmse] = forecast_metrics(model, graph, signal);
  return {name, loss, mae, rmse, model.parameter_count()};
}

}  // namespace

int main() {
  datasets::StaticLoadOptions opts;
  opts.feature_size = 4;
  opts.num_timestamps = 60;
  datasets::StaticTemporalDataset ds = datasets::load_chickenpox(opts);
  std::cout << "epidemic dataset: " << ds.num_nodes << " counties, "
            << ds.edges.size() << " adjacencies, " << ds.num_timestamps
            << " weeks\n\n";

  StaticTemporalGraph graph(ds.num_nodes, ds.edges, ds.num_timestamps);

  Rng r1(42), r2(42), r3(42);
  nn::TGCNRegressor tgcn(opts.feature_size, 16, r1);
  nn::GConvGRURegressor gru(opts.feature_size, 16, /*k=*/2, r2);
  nn::GConvLSTMRegressor lstm(opts.feature_size, 16, /*k=*/2, r3);

  std::vector<Result> results;
  results.push_back(train_and_eval("TGCN", tgcn, graph, ds.signal));
  results.push_back(train_and_eval("GConvGRU", gru, graph, ds.signal));
  results.push_back(train_and_eval("GConvLSTM", lstm, graph, ds.signal));

  std::cout << std::left << std::setw(12) << "model" << std::setw(10)
            << "params" << std::setw(12) << "train_mse" << std::setw(12)
            << "mae" << std::setw(12) << "rmse" << "\n";
  const Result* best = &results[0];
  for (const Result& r : results) {
    std::cout << std::setw(12) << r.name << std::setw(10) << r.params
              << std::setw(12) << r.train_mse << std::setw(12) << r.mae
              << std::setw(12) << r.rmse << "\n";
    if (r.rmse < best->rmse) best = &r;
  }
  std::cout << "\nbest forecaster: " << best->name << "\n";

  // Persist and restore the TGCN through a checkpoint; predictions must be
  // bit-identical afterwards.
  const std::string ckpt = "/tmp/stgraph_epidemic_tgcn.ckpt";
  io::save_checkpoint(tgcn, ckpt);
  Rng r4(7);  // deliberately different init
  nn::TGCNRegressor restored(opts.feature_size, 16, r4);
  io::load_checkpoint(restored, ckpt);
  auto [mae_a, rmse_a] = forecast_metrics(tgcn, graph, ds.signal);
  auto [mae_b, rmse_b] = forecast_metrics(restored, graph, ds.signal);
  std::cout << "checkpoint round-trip: rmse " << rmse_a << " -> " << rmse_b
            << (rmse_a == rmse_b ? " (identical)" : " (MISMATCH!)") << "\n";
  std::remove(ckpt.c_str());
  return 0;
}
