// Structural invariant analyzer (src/verify/): clean graphs of every
// format must audit clean — including a GPMAGraph that has been rolling
// through its timeline on the incremental view path — and each checker
// must FIRE on a seeded corruption of exactly the invariant it guards
// (flipped row offset, swapped edge labels, staled coefficient cache,
// unbalanced stack trace, ...). A checker that never fires is worse than
// none: it certifies corrupt structures as OK.
#include <gtest/gtest.h>

#include <limits>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "compiler/trace.hpp"
#include "core/executor.hpp"
#include "core/trainer.hpp"
#include "datasets/synthetic.hpp"
#include "gpma/gpma_graph.hpp"
#include "graph/naive_graph.hpp"
#include "graph/static_graph.hpp"
#include "nn/models.hpp"
#include "util/rng.hpp"
#include "verify/invariants.hpp"
#include "verify/validate.hpp"

namespace stgraph {
namespace {

using namespace datasets;

EdgeList random_stream(uint32_t nodes, std::size_t events, uint64_t seed) {
  Rng rng(seed);
  EdgeList stream;
  for (std::size_t i = 0; i < events; ++i)
    stream.emplace_back(static_cast<uint32_t>(rng.next_below(nodes)),
                        static_cast<uint32_t>(rng.next_below(nodes)));
  return stream;
}

DtdgEvents tiny_dtdg(uint32_t nodes = 60, std::size_t events = 1500,
                     uint64_t seed = 13) {
  return window_edge_stream(nodes, random_stream(nodes, events, seed), 0.05);
}

bool has_finding_from(const verify::Report& r, const std::string& prefix) {
  for (const auto& f : r.findings())
    if (f.checker.compare(0, prefix.size(), prefix) == 0) return true;
  return false;
}

// A small compact snapshot built by hand so corruptions are surgical:
//   edges (src->dst): 0->1 (eid 0), 0->2 (eid 1), 1->2 (eid 2), 2->0 (eid 3)
struct HandGraph {
  // out_view: rows = src.
  std::vector<uint32_t> out_ro{0, 2, 3, 4};
  std::vector<uint32_t> out_col{1, 2, 2, 0};
  std::vector<uint32_t> out_eid{0, 1, 2, 3};
  // in_view: rows = dst.
  std::vector<uint32_t> in_ro{0, 1, 2, 4};
  std::vector<uint32_t> in_col{2, 0, 0, 1};
  std::vector<uint32_t> in_eid{3, 0, 1, 2};
  std::vector<uint32_t> in_deg{1, 1, 2};
  std::vector<uint32_t> out_deg{2, 1, 1};
  // Canonical (deg desc, id asc) orders.
  std::vector<uint32_t> fwd_order{2, 0, 1};  // by in-degree
  std::vector<uint32_t> bwd_order{0, 1, 2};  // by out-degree

  CsrView in_view() const {
    CsrView v;
    v.num_nodes = 3;
    v.num_edges = 4;
    v.row_offset = in_ro.data();
    v.col_indices = in_col.data();
    v.eids = in_eid.data();
    v.node_ids = fwd_order.data();
    return v;
  }
  CsrView out_view() const {
    CsrView v;
    v.num_nodes = 3;
    v.num_edges = 4;
    v.row_offset = out_ro.data();
    v.col_indices = out_col.data();
    v.eids = out_eid.data();
    v.node_ids = bwd_order.data();
    return v;
  }
  SnapshotView view() const {
    SnapshotView v;
    v.num_nodes = 3;
    v.num_edges = 4;
    v.in_view = in_view();
    v.out_view = out_view();
    v.in_degrees = in_deg.data();
    v.out_degrees = out_deg.data();
    return v;
  }
};

// ---- clean structures audit clean -----------------------------------------

TEST(Verify, HandBuiltSnapshotIsClean) {
  HandGraph g;
  verify::Report r = verify::check_snapshot_view(g.view());
  EXPECT_TRUE(r.ok()) << r.to_string();
  EXPECT_GT(r.checks_run(), 0u);
}

TEST(Verify, StaticTemporalGraphIsClean) {
  StaticLoadOptions o;
  o.scale = 1.0;
  o.num_timestamps = 8;
  o.feature_size = 4;
  auto ds = load_chickenpox(o);
  StaticTemporalGraph g(ds.num_nodes, ds.edges, ds.num_timestamps);
  verify::Report r = verify::check_graph(g);
  EXPECT_TRUE(r.ok()) << r.to_string();
}

TEST(Verify, NaiveGraphIsClean) {
  NaiveGraph g(tiny_dtdg());
  verify::Report r = verify::check_graph(g);
  EXPECT_TRUE(r.ok()) << r.to_string();
}

TEST(Verify, GpmaGraphCleanAfterIncrementalRolls) {
  GpmaGraph g(tiny_dtdg());
  const uint32_t T = g.num_timestamps();
  // Forward, backward, forward — then audit at every position. This is the
  // incremental patch path (asserted below), so the audit covers views the
  // delta-bounded maintenance produced, not just full rebuilds.
  verify::Report r;
  for (uint32_t t = 0; t < T; ++t) r.merge(verify::check_graph_at(g, t));
  for (uint32_t t = T; t-- > 0;) r.merge(verify::check_graph_at(g, t));
  EXPECT_TRUE(r.ok()) << r.to_string();
  EXPECT_GT(g.incremental_view_updates(), 0u)
      << "rolls never took the incremental path; audit proved nothing new";
}

TEST(Verify, GpmaGraphCleanAfterStreamingAppend) {
  DtdgEvents ev = tiny_dtdg(40, 600, 7);
  GpmaGraph g(ev);
  (void)g.get_graph(g.num_timestamps() - 1);
  EdgeList head = ev.snapshot_edges(ev.num_timestamps() - 1);
  std::set<std::pair<uint32_t, uint32_t>> present(head.begin(), head.end());
  EdgeDelta d;
  for (uint32_t s = 0; s < 40 && d.additions.size() < 2; ++s)
    for (uint32_t t = 0; t < 40 && d.additions.size() < 2; ++t)
      if (!present.count({s, t})) d.additions.emplace_back(s, t);
  ASSERT_EQ(d.additions.size(), 2u);
  g.append_delta(d);
  verify::Report r = verify::check_graph_at(g, g.num_timestamps() - 1);
  EXPECT_TRUE(r.ok()) << r.to_string();
}

// ---- seeded corruptions: every checker must fire ---------------------------

TEST(VerifyCorruption, FlippedRowOffsetFires) {
  HandGraph g;
  std::swap(g.in_ro[1], g.in_ro[2]);  // 0,1,2,4 -> 0,2,1,4: non-monotone
  verify::Report r = verify::check_csr(g.in_view(), "in_view");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(has_finding_from(r, "check_csr")) << r.to_string();
}

TEST(VerifyCorruption, RowOffsetSpanMismatchFires) {
  HandGraph g;
  g.in_ro[3] = 3;  // compact view must end exactly at m=4
  verify::Report r = verify::check_csr(g.in_view(), "in_view");
  EXPECT_FALSE(r.ok()) << "ro[n] != m not caught";
}

TEST(VerifyCorruption, ColumnOutOfBoundsFires) {
  HandGraph g;
  g.in_col[1] = 9;
  EXPECT_FALSE(verify::check_csr(g.in_view(), "in_view").ok());
}

TEST(VerifyCorruption, DuplicateEidFires) {
  HandGraph g;
  g.in_eid[0] = g.in_eid[1];  // eid 0 now appears twice, eid 3 never
  verify::Report r = verify::check_csr(g.in_view(), "in_view");
  EXPECT_FALSE(r.ok()) << r.to_string();
}

TEST(VerifyCorruption, SwappedEidsBreakTranspose) {
  HandGraph g;
  // Each view is still a valid CSR on its own, but the shared labels now
  // resolve to different edges in the two directions.
  std::swap(g.in_eid[1], g.in_eid[2]);
  EXPECT_TRUE(verify::check_csr(g.in_view(), "in_view").ok());
  verify::Report r = verify::check_transpose(g.in_view(), g.out_view());
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(has_finding_from(r, "check_transpose")) << r.to_string();
}

TEST(VerifyCorruption, WrongDegreeOrderFires) {
  HandGraph g;
  std::swap(g.fwd_order[0], g.fwd_order[2]);  // ascending degree now
  verify::Report r = verify::check_degree_order(g.fwd_order.data(),
                                                g.in_deg.data(), 3, "fwd");
  EXPECT_FALSE(r.ok()) << r.to_string();
}

TEST(VerifyCorruption, NonPermutationOrderFires) {
  HandGraph g;
  g.fwd_order = {2, 2, 1};  // vertex 0 missing, vertex 2 doubled
  verify::Report r = verify::check_degree_order(g.fwd_order.data(),
                                                g.in_deg.data(), 3, "fwd");
  EXPECT_FALSE(r.ok()) << r.to_string();
}

TEST(VerifyCorruption, TiedDegreeIdOrderFires) {
  // Vertices 0 and 1 have equal degree; canonical order requires 0 first.
  std::vector<uint32_t> deg{1, 1};
  std::vector<uint32_t> order{1, 0};
  EXPECT_FALSE(verify::check_degree_order(order.data(), deg.data(), 2, "x").ok());
  order = {0, 1};
  EXPECT_TRUE(verify::check_degree_order(order.data(), deg.data(), 2, "x").ok());
}

TEST(VerifyCorruption, WrongDegreeArrayFires) {
  HandGraph g;
  g.in_deg[2] = 1;  // row 2 really has 2 live in-neighbors
  EXPECT_FALSE(verify::check_degrees(g.in_view(), g.in_deg.data(), "in").ok());
}

TEST(VerifyCorruption, StaleCoefCacheFires) {
  HandGraph g;
  std::vector<float> coef(4);
  SnapshotView v = g.view();
  for (uint32_t dst = 0; dst < 3; ++dst)
    for (uint32_t j = g.in_ro[dst]; j < g.in_ro[dst + 1]; ++j)
      coef[g.in_eid[j]] = gcn_norm_coef(g.in_deg[g.in_col[j]], g.in_deg[dst]);
  v.gcn_coef = coef.data();
  EXPECT_TRUE(verify::check_gcn_coef(v).ok());
  coef[2] *= 1.0f + 1e-6f;  // stale by one ulp-ish nudge
  verify::Report r = verify::check_gcn_coef(v);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(has_finding_from(r, "check_gcn_coef")) << r.to_string();
}

TEST(VerifyCorruption, EdgeCountMismatchFires) {
  HandGraph g;
  SnapshotView v = g.view();
  v.num_edges = 3;  // views still say 4
  verify::Report r = verify::check_snapshot_view(v);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(has_finding_from(r, "check_snapshot_view")) << r.to_string();
}

TEST(VerifyCorruption, CorruptedPmaFires) {
  GpmaGraph g(tiny_dtdg(30, 400, 17));
  (void)g.get_graph(0);
  const Pma& pma = g.pma();
  EXPECT_TRUE(verify::check_pma(pma).ok());

  // Swap two live keys in place (const_cast: the PMA has no public
  // corruption surface, which is rather the point) — the sorted-order
  // invariant breaks and check_pma must say so. Swap back afterwards so
  // the graph object destructs over a sane structure.
  uint64_t* slots = const_cast<uint64_t*>(pma.slots().data());
  std::vector<uint32_t> live;
  for (std::size_t j = 0; j < pma.capacity() && live.size() < 2; ++j)
    if (slots[j] != Pma::kEmptyKey) live.push_back(static_cast<uint32_t>(j));
  ASSERT_EQ(live.size(), 2u);
  ASSERT_NE(slots[live[0]], slots[live[1]]);
  std::swap(slots[live[0]], slots[live[1]]);
  verify::Report r = verify::check_pma(pma);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(has_finding_from(r, "check_pma")) << r.to_string();
  std::swap(slots[live[0]], slots[live[1]]);
  EXPECT_TRUE(verify::check_pma(pma).ok());
}

TEST(VerifyCorruption, PmaViewDisagreementFires) {
  GpmaGraph g(tiny_dtdg(30, 400, 3));
  SnapshotView v = g.get_graph(0);
  EXPECT_TRUE(verify::check_pma_view_agreement(g.pma(), v).ok());

  // Copy the gapped arrays, swap the dst of two live slots, and repoint the
  // view — the PMA slot keys no longer match the view's columns.
  const uint32_t cap = v.out_view.row_offset[v.out_view.num_nodes];
  std::vector<uint32_t> col(v.out_view.col_indices,
                            v.out_view.col_indices + cap);
  std::vector<uint32_t> live;
  for (uint32_t j = 0; j < cap && live.size() < 2; ++j)
    if (col[j] != kSpace) live.push_back(j);
  ASSERT_EQ(live.size(), 2u);
  // Guarantee an observable difference even if both slots held equal dsts.
  std::swap(col[live[0]], col[live[1]]);
  col[live[0]] ^= col[live[1]] == col[live[0]] ? 1u : 0u;
  SnapshotView bad = v;
  bad.out_view.col_indices = col.data();
  verify::Report r = verify::check_pma_view_agreement(g.pma(), bad);
  EXPECT_FALSE(r.ok()) << r.to_string();
}

TEST(VerifyCorruption, BadProgramFires) {
  using namespace compiler;
  Program p = trace([](VertexContext& v) -> AggExpr {
    return v.agg_sum(v.gcn_norm() * v.src_feature(0));
  });
  EXPECT_TRUE(verify::check_program(p).ok());

  Program out_of_range = p;
  out_of_range.terms[0].input = 7;  // only input 0 exists
  EXPECT_FALSE(verify::check_program(out_of_range).ok());

  Program bad_const = p;
  bad_const.terms[0].coefs.push_back(
      {CoefKind::kConst, std::numeric_limits<float>::quiet_NaN()});
  EXPECT_FALSE(verify::check_program(bad_const).ok());

  Program bad_max = p;
  bad_max.agg = AggKind::kMax;
  bad_max.terms.push_back(bad_max.terms[0]);
  EXPECT_FALSE(verify::check_program(bad_max).ok());
}

TEST(VerifyCorruption, UnbalancedTraceFires) {
  // Balanced trace: clean.
  std::vector<std::string> good{
      "fwd t=0", "push graph t=0", "push state #0", "fwd t=1",
      "push graph t=1", "push state #1", "bwd t=1", "pop graph t=1",
      "pop state #1", "bwd t=0", "pop graph t=0", "pop state #0"};
  EXPECT_TRUE(verify::check_protocol_trace(good).ok());

  // Missing pop: both stacks end non-empty.
  std::vector<std::string> unbalanced(good.begin(), good.end() - 3);
  verify::Report r = verify::check_protocol_trace(unbalanced);
  EXPECT_FALSE(r.ok()) << r.to_string();

  // LIFO violation: graph popped out of order.
  std::vector<std::string> wrong_order{
      "push graph t=0", "push graph t=1", "pop graph t=0", "pop graph t=1"};
  EXPECT_FALSE(verify::check_protocol_trace(wrong_order).ok());

  // Abort clears both stacks: clean again.
  std::vector<std::string> aborted{
      "push graph t=0", "push state #0", "abort seq (state depth 1, graph depth 1)"};
  EXPECT_TRUE(verify::check_protocol_trace(aborted).ok());
}

TEST(VerifyCorruption, ExecutorTraceFromRealRunIsBalanced) {
  // Drive a real training epoch with the executor trace on and feed the
  // recorded events through the protocol checker.
  DtdgEvents ev = tiny_dtdg(40, 600, 21);
  GpmaGraph g(ev);
  DynamicLoadOptions o;
  o.feature_size = 4;
  o.link_samples_per_step = 16;
  TemporalSignal sig = make_dynamic_signal(ev, o);
  Rng rng(3);
  nn::TGCNEncoder model(o.feature_size, 8, rng);
  core::TrainConfig cfg;
  cfg.epochs = 1;
  cfg.sequence_length = 4;
  cfg.task = core::Task::kLinkPrediction;
  core::STGraphTrainer trainer(g, model, sig, cfg);
  std::vector<std::string> trace;
  trainer.executor().set_trace(&trace);
  trainer.train();
  trainer.executor().set_trace(nullptr);
  ASSERT_FALSE(trace.empty());
  verify::Report r = verify::check_protocol_trace(trace);
  EXPECT_TRUE(r.ok()) << r.to_string();
}

TEST(VerifyCorruption, UndrainedExecutorFires) {
  DtdgEvents ev = tiny_dtdg(20, 200, 5);
  GpmaGraph g(ev);
  core::TemporalExecutor ex(g);
  EXPECT_TRUE(verify::check_executor_drained(ex).ok());
  ex.state_stack().push({});
  verify::Report r = verify::check_executor_drained(ex);
  EXPECT_FALSE(r.ok()) << r.to_string();
  ex.state_stack().clear();
}

// ---- STGRAPH_VALIDATE wiring ----------------------------------------------

TEST(Validate, RequireOkThrowsWithReportText) {
  verify::Report r;
  r.fail("check_csr/in_view", "row_offset not monotone at row 3");
  try {
    verify::require_ok(r, "unit test");
    FAIL() << "require_ok did not throw";
  } catch (const StgError& e) {
    EXPECT_NE(std::string(e.what()).find("check_csr/in_view"),
              std::string::npos)
        << e.what();
  }
}

TEST(Validate, TrainingSequenceRunsCleanUnderValidation) {
  const bool was = verify::validation_enabled();
  verify::set_validation_enabled(true);
  {
    // GPMA + incremental views + the trainer's per-sequence audit: every
    // refresh_views() along the way now runs the full analyzer and throws
    // on the first violation.
    DtdgEvents ev = tiny_dtdg(40, 600, 11);
    GpmaGraph g(ev);
    DynamicLoadOptions o;
    o.feature_size = 4;
    o.link_samples_per_step = 16;
    TemporalSignal sig = make_dynamic_signal(ev, o);
    Rng rng(9);
    nn::TGCNEncoder model(o.feature_size, 8, rng);
    core::TrainConfig cfg;
    cfg.epochs = 1;
    cfg.sequence_length = 4;
    cfg.task = core::Task::kLinkPrediction;
    core::STGraphTrainer trainer(g, model, sig, cfg);
    EXPECT_NO_THROW(trainer.train());
  }
  {
    // Streaming append path under validation. Pick an addition that is
    // genuinely absent from the head snapshot (append rejects re-adds).
    DtdgEvents ev = tiny_dtdg(30, 300, 2);
    NaiveGraph g(ev);
    EdgeList head = ev.snapshot_edges(ev.num_timestamps() - 1);
    std::set<std::pair<uint32_t, uint32_t>> present(head.begin(), head.end());
    EdgeDelta d;
    for (uint32_t s = 0; s < 30 && d.additions.empty(); ++s)
      for (uint32_t t = 0; t < 30 && d.additions.empty(); ++t)
        if (!present.count({s, t})) d.additions = {{s, t}};
    ASSERT_FALSE(d.additions.empty());
    EXPECT_NO_THROW(g.append_delta(d));
  }
  verify::set_validation_enabled(was);
}

}  // namespace
}  // namespace stgraph
