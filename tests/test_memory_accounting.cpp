// Memory-accounting integration tests: the unit-scale versions of the
// paper's memory results (Figures 6/8) plus leak regression guards —
// every byte charged during a training epoch must be released when the
// training objects die.
#include <gtest/gtest.h>

#include "baseline/trainer.hpp"
#include "core/trainer.hpp"
#include "datasets/synthetic.hpp"
#include "gpma/gpma_graph.hpp"
#include "graph/naive_graph.hpp"
#include "graph/static_graph.hpp"
#include "runtime/memory_tracker.hpp"
#include "util/rng.hpp"

namespace stgraph {
namespace {

using namespace datasets;

StaticTemporalDataset dense_static() {
  StaticLoadOptions o;
  o.num_timestamps = 16;
  o.feature_size = 8;
  o.scale = 0.3;
  return load_windmill(o);
}

// Peak device bytes of one training epoch at the given sequence length.
template <typename SetupFn>
std::size_t peak_of(SetupFn&& setup, uint32_t seq_len) {
  PeakMemoryRegion region;
  setup(seq_len);
  return region.peak();
}

TEST(MemoryAccounting, BaselineGrowsFasterWithSequenceLength) {
  auto ds = dense_static();
  TemporalSignal unweighted = ds.signal;
  unweighted.edge_weights.clear();

  auto stgraph_epoch = [&](uint32_t seq) {
    StaticTemporalGraph graph(ds.num_nodes, ds.edges, ds.num_timestamps);
    Rng rng(1);
    nn::TGCNRegressor model(8, 8, rng);
    core::TrainConfig cfg;
    cfg.sequence_length = seq;
    cfg.task = core::Task::kNodeRegression;
    core::STGraphTrainer trainer(graph, model, unweighted, cfg);
    trainer.train_epoch();
  };
  auto baseline_epoch = [&](uint32_t seq) {
    baseline::PygtTemporalGraph graph(ds.num_nodes, ds.edges,
                                      ds.num_timestamps);
    Rng rng(1);
    baseline::PygTemporalModel model(8, 8, rng, true);
    core::TrainConfig cfg;
    cfg.sequence_length = seq;
    cfg.task = core::Task::kNodeRegression;
    baseline::PygtTrainer trainer(graph, model, unweighted, cfg);
    trainer.train_epoch();
  };

  const std::size_t st_short = peak_of(stgraph_epoch, 2);
  const std::size_t st_long = peak_of(stgraph_epoch, 16);
  const std::size_t bl_short = peak_of(baseline_epoch, 2);
  const std::size_t bl_long = peak_of(baseline_epoch, 16);

  // Figure 6 at unit scale: the baseline's peak grows by a larger factor
  // over the same sequence-length range, and STGraph stays below it.
  const double st_growth = static_cast<double>(st_long) / st_short;
  const double bl_growth = static_cast<double>(bl_long) / bl_short;
  EXPECT_GT(bl_growth, st_growth);
  EXPECT_LT(st_long, bl_long);
}

TEST(MemoryAccounting, GpmaFlatAcrossChangeRates) {
  Rng rng(3);
  EdgeList stream;
  for (int i = 0; i < 4000; ++i) {
    uint32_t s = static_cast<uint32_t>(rng.next_below(60));
    uint32_t d = static_cast<uint32_t>(rng.next_below(60));
    if (s == d) d = (d + 1) % 60;
    stream.emplace_back(s, d);
  }
  // Figure 8 at unit scale: halving the %-change leaves GPMA's resident
  // bytes nearly unchanged while Naive's grow substantially.
  DtdgEvents fine = window_edge_stream(60, stream, 2.0);
  DtdgEvents coarse = window_edge_stream(60, stream, 8.0);
  GpmaGraph gf(fine), gc(coarse);
  NaiveGraph nf(fine), nc(coarse);
  const double gpma_ratio =
      static_cast<double>(gf.device_bytes()) / gc.device_bytes();
  const double naive_ratio =
      static_cast<double>(nf.device_bytes()) / nc.device_bytes();
  EXPECT_LT(gpma_ratio, 1.5);
  EXPECT_GT(naive_ratio, 2.0);
}

TEST(MemoryAccounting, GpmaCacheShowsUpInDeviceBytes) {
  Rng rng(5);
  EdgeList stream;
  for (int i = 0; i < 1000; ++i) {
    uint32_t s = static_cast<uint32_t>(rng.next_below(30));
    uint32_t d = static_cast<uint32_t>(rng.next_below(30));
    if (s == d) d = (d + 1) % 30;
    stream.emplace_back(s, d);
  }
  DtdgEvents ev = window_edge_stream(30, stream, 10.0);
  GpmaGraph g(ev);
  const std::size_t before = g.device_bytes();
  g.get_graph(2);
  g.get_backward_graph(1);  // rollback triggers the Algorithm-2 cache
  EXPECT_GT(g.device_bytes(), before);
}

TEST(MemoryAccounting, TrainingLeavesNoResidualTensors) {
  auto ds = dense_static();
  auto& mt = MemoryTracker::instance();
  const std::size_t before = mt.current_bytes(MemCategory::kTensor);
  {
    StaticTemporalGraph graph(ds.num_nodes, ds.edges, ds.num_timestamps);
    Rng rng(7);
    nn::TGCNRegressor model(8, 8, rng);
    core::TrainConfig cfg;
    cfg.task = core::Task::kNodeRegression;
    core::STGraphTrainer trainer(graph, model, ds.signal, cfg);
    trainer.train_epoch();
    trainer.train_epoch();
    EXPECT_GT(mt.current_bytes(MemCategory::kTensor), before);
  }
  // Model, optimizer state, gradients and saved activations all released.
  EXPECT_EQ(mt.current_bytes(MemCategory::kTensor), before);
}

TEST(MemoryAccounting, BaselineTrainingLeavesNoResidualEdgeMessages) {
  auto ds = dense_static();
  auto& mt = MemoryTracker::instance();
  const std::size_t before = mt.current_bytes(MemCategory::kEdgeMessage);
  {
    baseline::PygtTemporalGraph graph(ds.num_nodes, ds.edges,
                                      ds.num_timestamps);
    Rng rng(9);
    baseline::PygTemporalModel model(8, 8, rng, true);
    core::TrainConfig cfg;
    cfg.task = core::Task::kNodeRegression;
    TemporalSignal unweighted = ds.signal;
    unweighted.edge_weights.clear();
    baseline::PygtTrainer trainer(graph, model, unweighted, cfg);
    trainer.train_epoch();
  }
  EXPECT_EQ(mt.current_bytes(MemCategory::kEdgeMessage), before);
}

}  // namespace
}  // namespace stgraph
