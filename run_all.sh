#!/bin/sh
# Final validation sweep: full test suite + every bench binary.
#
#   ./run_all.sh            default sweep (tests + benches)
#   ./run_all.sh sanitize   tier-1 suite under ASan/UBSan with the
#                           failpoint machinery compiled in and active
#                           (fault-injection tests arm their own
#                           failpoints; this shakes out UB on the
#                           error/rollback paths)
#   ./run_all.sh tsan       the multi-threaded suites under ThreadSanitizer:
#                           thread pool barrier protocol, serve request
#                           queue / double-buffered views, the socket
#                           front-end (concurrent clients over loopback),
#                           and the shard/pipeline training path
#                           (test_scaling: background view preparation +
#                           shard-parallel aggregation parity)
#   ./run_all.sh lint       clang-tidy over src/ + a clang syntax-only pass
#                           of EVERY .cpp under src/ and tools/ with
#                           -Wthread-safety -Werror (the annotations in
#                           util/thread_annotations.hpp are no-ops under
#                           GCC; this is where they are actually enforced),
#                           plus a toolchain-independent guard that every
#                           file declaring a Mutex member includes the
#                           annotated wrapper header. Clang passes skip
#                           cleanly when clang is not installed; the guard
#                           always runs.
#   ./run_all.sh fuzz-smoke deterministic structure-aware fuzz of the STGN
#                           frame decoder and the STGW/STGT readers under
#                           ASan+UBSan with raised iteration counts
#                           (STGRAPH_FUZZ_ITERS=2000)
#
# Any mode can be combined with STGRAPH_DEADLOCK=1 in the environment to
# arm the lock-order / blocking-hazard analyzer (runtime/analyze.hpp) in
# every spawned test and bench process; armed processes fail at exit on
# any lock-order cycle or unannotated blocking-while-locked hazard.
#   ./run_all.sh validate   tier-1 suite with STGRAPH_VALIDATE=1 exported
#                           (every GPMA view refresh / streaming append /
#                           training sequence runs the structural invariant
#                           analyzer inline) + stgraph_check over freshly
#                           generated artifacts
#   ./run_all.sh serve-smoke
#                           serving smoke test: checkpoint a tiny model,
#                           serve it in-process (concurrent predict
#                           clients + streaming delta ingestion), emit
#                           BENCH_serve.json with p50/p99 latency and
#                           ingest throughput
#   ./run_all.sh serve-net-smoke
#                           network serving smoke test: bring up the TCP
#                           front-end, drive the closed/open-loop load
#                           generator over loopback, assert the per-tenant
#                           accounting identity, reader-scaling and
#                           no-late-accepts contracts, emit
#                           BENCH_serve_net.json
#   ./run_all.sh scaling-smoke
#                           multi-core scaling smoke test: shard/pipeline
#                           parity + pipeline-overlap tests (test_scaling,
#                           plus the STGRAPH_NUM_THREADS=1 and
#                           STGRAPH_PIPELINE=off ctest variants), then a
#                           reduced bench_scaling sweep on one dataset that
#                           asserts bit-identical losses across the grid
#                           and a best-point speedup floor vs the serial
#                           schedule
#   ./run_all.sh fusion-smoke
#                           fusing tape compiler smoke test: the fusion
#                           bit-parity suite (test_fusion, plus the serial
#                           variant, plus the whole training suite rerun
#                           with STGRAPH_FUSION=off), then the fused-vs-
#                           unfused ablation (epilogue micro + end-to-end
#                           TGCN/GConvGRU epochs, bitwise loss equality and
#                           zero steady-state compiles asserted, emitted as
#                           BENCH_fusion.json)
#   ./run_all.sh bench      graph-update benches only: bench_fig9 (GNN/
#                           update time split with the per-phase counters
#                           and the incremental-vs-full view-maintenance
#                           ablation, emitted as BENCH_fig9.json) +
#                           bench_micro_gpma + the kernel-engine ablation
#                           (scalar vs SIMD, coef cache on/off, fused vs
#                           unfused, emitted as BENCH_kernels.json) +
#                           bench_serve_robust (2x overload with deadlines,
#                           fault schedules, WAL recovery cost, emitted as
#                           BENCH_serve_robust.json) + bench_serve_net
#                           (closed/open-loop TCP load, reader-scaling
#                           sweep, emitted as BENCH_serve_net.json)
#   ./run_all.sh chaos      chaos harness sweep: test_serve_chaos (random
#                           failpoint schedules + concurrent load + fork/
#                           SIGKILL recovery parity) across 20 fixed seeds
#                           via STGRAPH_CHAOS_SEED, then stgraph_check over
#                           a freshly recovered WAL
cd /root/repo

if [ "$1" = "scaling-smoke" ]; then
  cmake -B build -S . || exit 1
  cmake --build build -j "$(nproc)" --target test_scaling bench_scaling \
    || exit 1
  ctest --test-dir build --output-on-failure \
    -R '^(test_scaling|scaling_serial|scaling_pipeline_off)$' || exit 1
  # One small dataset, two lanes. The floor is a regression guard, not a
  # parallelism proof: on single-core hosts the grid is oversubscribed and
  # the best point hovers around 1x, so assert only that no configuration
  # family collapses (e.g. pipeline suddenly costing 25%+). Parity (bit-
  # identical losses across the grid) is the hard gate and has no slack.
  ./build/bench/bench_scaling --datasets=1 --max-threads=2 \
    --assert-speedup=0.75 --json-out=/root/repo/BENCH_scaling.json || exit 1
  cat /root/repo/BENCH_scaling.json
  exit 0
fi

if [ "$1" = "fusion-smoke" ]; then
  cmake -B build -S . || exit 1
  cmake --build build -j "$(nproc)" --target test_fusion test_training \
    bench_micro_kernels || exit 1
  ctest --test-dir build --output-on-failure \
    -R '^(FusionParity|FusionCache|FusionStats|TrainingParity|EwPasses|EwAutodiff)\.' \
    || exit 1
  ctest --test-dir build --output-on-failure \
    -R '^(fusion_serial|training_fusion_off)$' || exit 1
  # The ablation bench doubles as a contract check: it exits non-zero if
  # the fused epilogue is not bitwise equal to kernel-then-add-bias or if
  # any steady-state epoch compiled a program.
  ./build/bench/bench_micro_kernels \
    --fusion-json-out=/root/repo/BENCH_fusion.json || exit 1
  cat /root/repo/BENCH_fusion.json
  exit 0
fi

if [ "$1" = "bench" ]; then
  cmake -B build -S . || exit 1
  cmake --build build -j "$(nproc)" --target bench_fig9 bench_micro_gpma \
    bench_micro_kernels bench_serve_robust bench_serve_net bench_scaling \
    || exit 1
  ./build/bench/bench_fig9 --json-out=/root/repo/BENCH_fig9.json || exit 1
  ./build/bench/bench_scaling \
    --json-out=/root/repo/BENCH_scaling.json || exit 1
  ./build/bench/bench_micro_gpma || exit 1
  ./build/bench/bench_micro_kernels \
    --json-out=/root/repo/BENCH_kernels.json \
    --fusion-json-out=/root/repo/BENCH_fusion.json || exit 1
  ./build/bench/bench_serve_robust \
    --out=/root/repo/BENCH_serve_robust.json || exit 1
  ./build/bench/bench_serve_net \
    --out=/root/repo/BENCH_serve_net.json || exit 1
  exit 0
fi

if [ "$1" = "chaos" ]; then
  cmake -B build -S . || exit 1
  cmake --build build -j "$(nproc)" --target test_serve_chaos \
    bench_serve_robust stgraph_check || exit 1
  seed=1
  while [ "$seed" -le 20 ]; do
    echo "===== chaos seed $seed ====="
    STGRAPH_CHAOS_SEED=$seed ./build/tests/test_serve_chaos \
      --gtest_brief=1 || exit 1
    seed=$((seed + 1))
  done
  # Generate a real WAL through the public serving surface (the robustness
  # bench journals its whole fault-injected run) and audit it with the CLI
  # validator: CRC framing, start record, monotonic time/version.
  ./build/bench/bench_serve_robust --out=/tmp/BENCH_serve_robust.json \
    --threads=4 --ops=10 --deltas=10 || exit 1
  ./build/tools/stgraph_check /tmp/stgraph_bench_robust.stgw || exit 1
  exit 0
fi

if [ "$1" = "serve-smoke" ]; then
  cmake -B build -S . || exit 1
  cmake --build build -j "$(nproc)" --target bench_serve || exit 1
  ./build/bench/bench_serve --out=/root/repo/BENCH_serve.json \
    --requests=1000 --deltas=50 --threads=4 || exit 1
  cat /root/repo/BENCH_serve.json
  exit 0
fi

if [ "$1" = "serve-net-smoke" ]; then
  cmake -B build -S . || exit 1
  cmake --build build -j "$(nproc)" --target bench_serve_net || exit 1
  # The bench exits non-zero if any contract fails: bit-identical outputs
  # across reader counts, >=2x throughput scaling 1->4 readers, the
  # accounting identity accepted + shed + errors == issued, and zero
  # accepted responses past deadline + one batch interval at 2x overload.
  ./build/bench/bench_serve_net --out=/root/repo/BENCH_serve_net.json \
    --connections=8 --ops=6 --requests=200 || exit 1
  cat /root/repo/BENCH_serve_net.json
  exit 0
fi

if [ "$1" = "sanitize" ]; then
  cmake -B build-asan -S . \
    -DSTGRAPH_SANITIZE=address,undefined \
    -DSTGRAPH_BUILD_BENCH=OFF \
    -DSTGRAPH_BUILD_EXAMPLES=OFF || exit 1
  cmake --build build-asan -j "$(nproc)" || exit 1
  UBSAN_OPTIONS="halt_on_error=1 print_stacktrace=1" \
    ctest --test-dir build-asan --output-on-failure \
    > build-asan/test_output_asan.txt 2>&1
  status=$?
  tail -n 20 build-asan/test_output_asan.txt
  exit $status
fi

if [ "$1" = "tsan" ]; then
  cmake -B build-tsan -S . \
    -DSTGRAPH_SANITIZE=thread \
    -DSTGRAPH_BUILD_BENCH=OFF \
    -DSTGRAPH_BUILD_EXAMPLES=OFF || exit 1
  cmake --build build-tsan -j "$(nproc)" \
    --target test_threadpool_mt test_serve_mt test_serve_net test_scaling \
    test_fusion || exit 1
  for t in test_threadpool_mt test_serve_mt test_serve_net test_scaling \
           test_fusion; do
    echo "===== $t (tsan) ====="
    TSAN_OPTIONS="halt_on_error=1 suppressions=$(pwd)/tsan.supp" \
      ./build-tsan/tests/$t || exit 1
  done
  exit 0
fi

if [ "$1" = "lint" ]; then
  status=0
  if command -v clang-tidy > /dev/null 2>&1; then
    cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON || exit 1
    find src tools -name '*.cpp' | while read -r f; do
      clang-tidy -p build --quiet "$f" || exit 1
    done || status=1
  else
    echo "lint: clang-tidy not installed, skipping tidy pass"
  fi
  # Self-maintenance guard, toolchain-independent: every file under src/
  # that declares a stgraph::Mutex member must include the annotated
  # wrapper header (directly or via its own header) — a raw std::mutex or
  # a Mutex smuggled in some other way would be invisible to BOTH the
  # -Wthread-safety pass below and the runtime lock-order analyzer. The
  # compile list below is the full tree, so "on the list" reduces to
  # "compiles with the wrapper in scope".
  for f in $(grep -rlE '(^|[^:[:alnum:]_])Mutex[[:space:]]+[A-Za-z_]' \
               --include='*.hpp' --include='*.cpp' src); do
    [ "$f" = "src/runtime/mutex.hpp" ] && continue  # the wrapper itself
    base=$(echo "$f" | sed 's/\.[^.]*$//')
    if ! grep -q 'runtime/mutex\.hpp' "$f" \
       && { [ ! -f "$base.hpp" ] || ! grep -q 'runtime/mutex\.hpp' "$base.hpp"; }; then
      echo "lint: $f declares a Mutex member but never includes runtime/mutex.hpp"
      status=1
    fi
  done
  # Guard the guard: the pattern above must keep matching the known
  # declarations, or a rename could silently empty the check.
  mutex_files=$(grep -rlE '(^|[^:[:alnum:]_])Mutex[[:space:]]+[A-Za-z_]' \
                  --include='*.hpp' --include='*.cpp' src | wc -l)
  if [ "$mutex_files" -lt 5 ]; then
    echo "lint: Mutex-member scan found only $mutex_files files — the pattern is broken"
    status=1
  fi
  if command -v clang++ > /dev/null 2>&1; then
    # Thread-safety analysis over the ENTIRE tree. The annotations expand
    # to nothing under GCC, so this clang pass is the only place they are
    # enforced; -Wno-everything keeps unrelated clang diagnostics out of
    # the gate while -Werror makes every thread-safety finding fatal.
    for f in $(find src tools -name '*.cpp' | sort); do
      echo "thread-safety: $f"
      clang++ -std=c++20 -Isrc -fsyntax-only \
        -Wno-everything -Wthread-safety -Werror "$f" || status=1
    done
  else
    echo "lint: clang++ not installed, skipping -Wthread-safety pass"
  fi
  exit $status
fi

if [ "$1" = "fuzz-smoke" ]; then
  # Structure-aware fuzz of the byte-level readers (STGN frames, STGW WAL,
  # STGT containers) under ASan+UBSan with the iteration counts raised.
  # Deterministic: fixed seeds, so a failing iteration replays exactly.
  cmake -B build-asan -S . \
    -DSTGRAPH_SANITIZE=address,undefined \
    -DSTGRAPH_BUILD_BENCH=OFF \
    -DSTGRAPH_BUILD_EXAMPLES=OFF || exit 1
  cmake --build build-asan -j "$(nproc)" --target test_fuzz_formats || exit 1
  STGRAPH_FUZZ_ITERS=2000 \
    UBSAN_OPTIONS="halt_on_error=1 print_stacktrace=1" \
    ./build-asan/tests/test_fuzz_formats || exit 1
  exit 0
fi

if [ "$1" = "validate" ]; then
  cmake -B build -S . || exit 1
  cmake --build build -j "$(nproc)" || exit 1
  STGRAPH_VALIDATE=1 ctest --test-dir build --output-on-failure || exit 1
  ./build/examples/dataset_tool generate HC build/hc_check.stg || exit 1
  ./build/tools/stgraph_check build/hc_check.stg || exit 1
  exit 0
fi

ctest --test-dir build 2>&1 | tee /root/repo/test_output.txt > /dev/null
for b in build/bench/*; do
  if [ -x "$b" ] && [ -f "$b" ]; then
    echo "===== $(basename "$b") ====="
    "$b"
    echo
  fi
done 2>&1 | tee /root/repo/bench_output.txt > /dev/null
echo ALL_DONE > /root/repo/.run_all_done
