#include "autograd/engine.hpp"

#include <atomic>
#include <map>
#include <unordered_map>

#include "runtime/parallel.hpp"
#include "util/check.hpp"

namespace stgraph::autograd {
namespace {
std::atomic<uint64_t> g_seq{0};
}

Node::Node(std::string name) : name_(std::move(name)), seq_(++g_seq) {}

uint64_t node_count() { return g_seq.load(); }

bool Node::add_input(const Tensor& t) {
  InputEdge e;
  if (t.defined() && t.impl()->grad_fn) {
    e.producer = t.impl()->grad_fn;
    e.needs_grad = true;
  } else if (t.defined() && t.impl()->requires_grad) {
    e.leaf = t.impl();
    e.needs_grad = true;
  }
  edges_.push_back(std::move(e));
  return edges_.back().needs_grad;
}

void Node::set_output(Tensor& out) {
  STG_CHECK(out.defined(), "set_output on undefined tensor");
  bool any = false;
  for (const auto& e : edges_) any = any || e.needs_grad;
  if (!any || !NoGradGuard::grad_enabled()) return;
  out.impl()->requires_grad = true;
  out.impl()->grad_fn = shared_from_this();
}

void accumulate_grad(const std::shared_ptr<TensorImpl>& impl,
                     const Tensor& src) {
  STG_CHECK(src.defined(), "accumulating undefined gradient");
  STG_CHECK(impl->shape == src.shape(), "gradient shape ",
            shape_str(src.shape()), " != tensor shape ", shape_str(impl->shape));
  if (!impl->grad) {
    impl->grad = std::make_shared<TensorImpl>(impl->shape);
    impl->grad->data.fill(0.0f);
  }
  float* dst = impl->grad->data.data();
  const float* s = src.data();
  const std::size_t n = static_cast<std::size_t>(src.numel());
  device::parallel_for_ranges(n, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) dst[i] += s[i];
  });
}

void run_backward(const Tensor& root, const Tensor& grad_output) {
  STG_CHECK(root.defined(), "backward on undefined tensor");
  STG_CHECK(same_shape(root, grad_output),
            "grad_output shape must match root shape");
  if (!root.impl()->grad_fn) {
    if (root.impl()->requires_grad) accumulate_grad(root.impl(), grad_output);
    return;
  }

  // Pending gradients per node, processed in strictly decreasing sequence
  // number. Since a node's inputs were created before the node itself,
  // decreasing-seq order is a valid reverse-topological order, and a node
  // is only visited once all gradient contributions to it have arrived.
  std::map<uint64_t, std::pair<std::shared_ptr<Node>, Tensor>> ready;

  auto add_pending = [&](const std::shared_ptr<Node>& node, const Tensor& g) {
    auto it = ready.find(node->seq());
    if (it == ready.end()) {
      // Copy so later accumulation never mutates a caller-visible tensor.
      ready.emplace(node->seq(), std::make_pair(node, g.clone()));
    } else {
      Tensor& acc = it->second.second;
      float* a = acc.data();
      const float* b = g.data();
      const std::size_t n = static_cast<std::size_t>(acc.numel());
      device::parallel_for_ranges(n, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) a[i] += b[i];
      });
    }
  };

  add_pending(root.impl()->grad_fn, grad_output);

  while (!ready.empty()) {
    auto it = std::prev(ready.end());
    std::shared_ptr<Node> node = it->second.first;
    Tensor grad = it->second.second;
    ready.erase(it);

    std::vector<Tensor> input_grads = node->backward(grad);
    const auto& edges = node->edges();
    STG_CHECK(input_grads.size() == edges.size(), "node '", node->name(),
              "' returned ", input_grads.size(), " gradients for ",
              edges.size(), " inputs");
    for (size_t i = 0; i < edges.size(); ++i) {
      const InputEdge& e = edges[i];
      if (!e.needs_grad) continue;
      STG_CHECK(input_grads[i].defined(), "node '", node->name(),
                "' produced no gradient for differentiable input ", i);
      if (e.producer) {
        add_pending(e.producer, input_grads[i]);
      } else if (auto leaf = e.leaf.lock()) {
        accumulate_grad(leaf, input_grads[i]);
      }
    }
  }
}

}  // namespace stgraph::autograd
