#include "compiler/ir.hpp"

#include <algorithm>
#include <sstream>

namespace stgraph::compiler {

int Program::num_inputs() const {
  int n = 0;
  for (const MessageTerm& t : terms) n = std::max(n, t.input + 1);
  if (include_self) n = std::max(n, self_input + 1);
  return n;
}

namespace {
const char* coef_name(CoefKind k) {
  switch (k) {
    case CoefKind::kConst: return "const";
    case CoefKind::kGcnNorm: return "gcn_norm";
    case CoefKind::kInvDegree: return "inv_deg";
    case CoefKind::kInvDegreeP1: return "inv_deg_p1";
    case CoefKind::kEdgeWeight: return "edge_w";
    default: return "?";
  }
}
void print_coefs(std::ostringstream& oss, const std::vector<Coef>& coefs) {
  if (coefs.empty()) {
    oss << "1";
    return;
  }
  for (size_t i = 0; i < coefs.size(); ++i) {
    if (i) oss << "*";
    oss << coef_name(coefs[i].kind);
    if (coefs[i].kind == CoefKind::kConst) oss << "(" << coefs[i].value << ")";
  }
}
}  // namespace

std::string Program::to_string() const {
  std::ostringstream oss;
  const char* agg_name = agg == AggKind::kSum    ? "sum"
                         : agg == AggKind::kMean ? "mean"
                                                 : "max";
  oss << "out[v] = " << (out_scale != 1.0f ? std::to_string(out_scale) + " * " : "")
      << (max_backward ? "max_bwd" : agg_name) << "_{u in N(v)} [";
  for (size_t i = 0; i < terms.size(); ++i) {
    if (i) oss << " + ";
    print_coefs(oss, terms[i].coefs);
    oss << " * x" << terms[i].input << "[u]";
  }
  oss << "]";
  if (include_self) {
    oss << " + ";
    print_coefs(oss, self_coefs);
    oss << " * x" << self_input << "[v]";
  }
  return oss.str();
}

bool operator==(const Coef& a, const Coef& b) {
  return a.kind == b.kind && (a.kind != CoefKind::kConst || a.value == b.value);
}
bool operator==(const MessageTerm& a, const MessageTerm& b) {
  return a.input == b.input && a.coefs == b.coefs;
}
bool operator==(const Program& a, const Program& b) {
  return a.agg == b.agg && a.terms == b.terms &&
         a.include_self == b.include_self && a.self_coefs == b.self_coefs &&
         a.self_input == b.self_input && a.out_scale == b.out_scale &&
         a.max_backward == b.max_backward;
}

}  // namespace stgraph::compiler
