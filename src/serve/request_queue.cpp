#include "serve/request_queue.hpp"

#include <algorithm>

namespace stgraph::serve {

RequestQueue::PushResult RequestQueue::push(PredictRequest&& req) {
  {
    MutexLock lk(mu_);
    if (closed_) return PushResult::kClosed;
    if (queue_.size() >= capacity_) return PushResult::kFull;
    queue_.push_back(std::move(req));
    max_depth_ = std::max(max_depth_, queue_.size());
  }
  cv_.notify_one();
  return PushResult::kOk;
}

std::vector<PredictRequest> RequestQueue::pop_batch(std::size_t max_batch) {
  MutexLock lk(mu_);
  while (!closed_ && queue_.empty()) cv_.wait(lk);
  std::vector<PredictRequest> batch;
  const std::size_t n = std::min(max_batch, queue_.size());
  batch.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    batch.push_back(std::move(queue_.front()));
    queue_.pop_front();
  }
  return batch;  // empty <=> closed and drained
}

std::vector<PredictRequest> RequestQueue::drain_all() {
  MutexLock lk(mu_);
  std::vector<PredictRequest> all;
  all.reserve(queue_.size());
  while (!queue_.empty()) {
    all.push_back(std::move(queue_.front()));
    queue_.pop_front();
  }
  return all;
}

void RequestQueue::close() {
  {
    MutexLock lk(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

void RequestQueue::reopen() {
  MutexLock lk(mu_);
  closed_ = false;
}

std::size_t RequestQueue::depth() const {
  MutexLock lk(mu_);
  return queue_.size();
}

std::size_t RequestQueue::max_depth() const {
  MutexLock lk(mu_);
  return max_depth_;
}

}  // namespace stgraph::serve
