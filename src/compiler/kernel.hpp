// Kernel lowering and execution — the stand-in for Seastar's CUDA code
// generation. A Program is compiled into a KernelSpec (flattened coef
// products + dispatch flags); run_kernel() executes it with:
//
//   * vertex parallelism in the degree-sorted node_ids order (heaviest
//     vertices first, round-robin lane striding — the CPU analogue of the
//     paper's "pre-sorting the CSR lets high-degree vertices overlap with
//     many low-degree ones"),
//   * feature-adaptive work shaping: small feature sizes run one vertex
//     per work item; large feature sizes split rows into feature tiles so
//     lanes stay busy on small graphs (the paper's feature-adaptive thread
//     group allocation),
//   * gap awareness: gapped PMA views are consumed in place by skipping
//     kSpace slots, so GPMAGraph's backward pass needs no compaction.
//
// One launch performs gather + coefficient product + aggregate + self loop
// + output scaling — the operator fusion Seastar's codegen performs (the
// unfused path exists only as an ablation baseline in bench/).
#pragma once

#include "compiler/ir.hpp"
#include "graph/csr.hpp"

namespace stgraph::compiler {

/// Specialized form of one message term's coefficient product, built at
/// compile() time so the engine never re-interprets the coef list per edge.
/// Factors are pre-classified by what they depend on:
///   * c0            — product of every kConst factor (fully static),
///   * inv_deg/p1    — consumer-degree factors: hoistable out of the edge
///                     loop in the forward direction (consumer == row),
///                     per-edge in the backward direction,
///   * gcn           — symmetric degree factor, per-edge in both directions
///                     but servable from the per-snapshot coefficient cache,
///   * edge_w        — per-edge weight lookup.
/// Factor multiplication order is canonical (const, inv-degree, inv-degree+1,
/// gcn-norm, edge-weight, then out_scale) and compile() reorders the coef
/// lists of the stored program to match, so the retained reference kernel and
/// the specialized engine perform bit-identical float sequences.
struct TermPlan {
  int input = 0;
  float c0 = 1.0f;          // folded constant prefix
  uint8_t inv_deg = 0;      // count of kInvDegree factors
  uint8_t inv_deg_p1 = 0;   // count of kInvDegreeP1 factors
  uint8_t gcn = 0;          // count of kGcnNorm factors
  uint8_t edge_w = 0;       // count of kEdgeWeight factors
};

/// A compiled, executable kernel (forward or backward direction chosen at
/// run time via KernelArgs::producer_is_col).
struct KernelSpec {
  Program program;              // optimized (mean-lowered, folded)
  bool uses_edge_weight = false;
  bool uses_degrees = false;
  int num_inputs = 1;
  std::vector<TermPlan> plans;  // one per program.terms entry
  TermPlan self_plan;           // valid when program.include_self
  /// True when every term fits the specialization grid; otherwise
  /// run_kernel falls back to the interpreted reference path.
  bool specializable = true;
};

KernelSpec compile(Program p);

/// Terms beyond this count fall back to the interpreted reference kernel
/// (no real program comes close; the grid keeps per-row hoist state on the
/// stack sized by this bound).
inline constexpr uint32_t kMaxSpecializedTerms = 8;

/// Runtime arguments for one launch.
struct KernelArgs {
  CsrView view;                    // adjacency rows iterated by the kernel
  const uint32_t* in_degrees = nullptr;  // semantic in-degree array
  /// Gather sources, indexed by MessageTerm::input. inputs[i] is a row-major
  /// [num_nodes, num_feats] array read at the producer vertex.
  const float* const* inputs = nullptr;
  /// Row-side features for the self term (usually inputs[self_input]).
  const float* self_features = nullptr;
  const float* edge_weights = nullptr;   // indexed by eid; may be null
  /// Per-snapshot GCN-norm cache, indexed by eid: 1/sqrt((din(u)+1)(din(v)+1))
  /// precomputed once per snapshot view by the owning graph class. May be
  /// null, in which case kGcnNorm factors are computed inline per edge.
  const float* gcn_coef = nullptr;
  float* out = nullptr;                  // [num_nodes, num_feats], overwritten
  /// Max aggregation forward: records the winning producer id per
  /// (vertex, feature) cell (kSpace when no candidate existed).
  uint32_t* argmax_out = nullptr;
  /// Max-backward: the argmax recorded by the matching forward launch.
  const uint32_t* argmax_in = nullptr;
  uint32_t num_feats = 0;
  /// true  → forward  (rows are consumers; producer is the column)
  /// false → backward (rows are producers; consumer is the column)
  bool producer_is_col = true;
  /// Fused elementwise epilogue (the fusing tape compiler grafts a layer's
  /// bias add onto the aggregation's accumulator writeback): when non-null,
  /// a [num_feats] row added to every output row as it is stored, saving
  /// one full read-modify-write pass over the output. Sum aggregation only;
  /// bit-identical to running the kernel and then ops::add_bias (the add
  /// sees the same two floats either way).
  const float* epilogue_bias = nullptr;
};

void run_kernel(const KernelSpec& spec, const KernelArgs& args);

/// The retained interpreted kernel: per-edge coef re-evaluation, scalar
/// feature loops, original work shaping. Kept as the bit-parity oracle for
/// the fuzz suite and the ablation baseline for bench_micro_kernels; also
/// the fallback for programs outside the specialization grid.
void run_kernel_reference(const KernelSpec& spec, const KernelArgs& args);

/// Feature-size threshold at which the scheduler switches from
/// vertex-per-item to (vertex × feature-tile) work shaping.
inline constexpr uint32_t kFeatureTileThreshold = 64;
inline constexpr uint32_t kFeatureTile = 32;
/// Below this feature count tiling never pays (tiles would be narrower than
/// one vector register), even when the vertex count alone cannot fill lanes.
inline constexpr uint32_t kMinFeatureTile = 8;

}  // namespace stgraph::compiler
